#include "synth/encode.h"

#include <algorithm>
#include <cmath>

#include "base/rng.h"

namespace satpg {

const char* encode_algo_suffix(EncodeAlgo algo) {
  switch (algo) {
    case EncodeAlgo::kInputDominant:
      return ".ji";
    case EncodeAlgo::kOutputDominant:
      return ".jo";
    case EncodeAlgo::kCombined:
      return ".jc";
    case EncodeAlgo::kOneHot:
      return ".oh";
    case EncodeAlgo::kNatural:
      return ".nat";
  }
  return "?";
}

int Encoding::state_of(const BitVec& bits_value) const {
  for (std::size_t s = 0; s < code.size(); ++s)
    if (code[s] == bits_value) return static_cast<int>(s);
  return -1;
}

namespace {

int min_bits_for(int n) {
  int b = 0;
  while ((1 << b) < n) ++b;
  return std::max(1, b);
}

// Hamming distance between codes.
std::size_t hamming(const BitVec& a, const BitVec& b) {
  return (a ^ b).count();
}

// Output-similarity between two states: fraction of output bits that agree
// across their transition cubes (sampled per cube pair on commonly cared
// bits).
double output_similarity(const Fsm& fsm, int s, int t) {
  double agree = 0, total = 0;
  for (int ai : fsm.transitions_from(s)) {
    const auto& a = fsm.transitions()[static_cast<std::size_t>(ai)];
    for (int bi : fsm.transitions_from(t)) {
      const auto& b = fsm.transitions()[static_cast<std::size_t>(bi)];
      const BitVec both = a.output.care & b.output.care;
      const std::size_t n = both.count();
      if (n == 0) continue;
      const std::size_t diff = ((a.output.value ^ b.output.value) & both).count();
      agree += static_cast<double>(n - diff);
      total += static_cast<double>(n);
    }
  }
  return total > 0 ? agree / total : 0.0;
}

}  // namespace

std::vector<std::vector<double>> state_affinity(const Fsm& fsm,
                                                EncodeAlgo algo) {
  const int n = fsm.num_states();
  std::vector<std::vector<double>> w(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));

  const bool want_input = algo == EncodeAlgo::kInputDominant ||
                          algo == EncodeAlgo::kCombined;
  const bool want_output = algo == EncodeAlgo::kOutputDominant ||
                           algo == EncodeAlgo::kCombined;

  if (want_input) {
    // Common-predecessor counting: every state u contributes affinity to
    // each pair of its successor states.
    for (int u = 0; u < n; ++u) {
      std::vector<int> succ;
      for (int ti : fsm.transitions_from(u))
        succ.push_back(fsm.transitions()[static_cast<std::size_t>(ti)].to);
      std::sort(succ.begin(), succ.end());
      succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
      for (std::size_t i = 0; i < succ.size(); ++i)
        for (std::size_t j = i + 1; j < succ.size(); ++j) {
          w[static_cast<std::size_t>(succ[i])]
           [static_cast<std::size_t>(succ[j])] += 1.0;
          w[static_cast<std::size_t>(succ[j])]
           [static_cast<std::size_t>(succ[i])] += 1.0;
        }
    }
  }
  if (want_output) {
    // Output-pattern similarity plus common-successor counting.
    for (int s = 0; s < n; ++s) {
      for (int t = s + 1; t < n; ++t) {
        double v = output_similarity(fsm, s, t);
        // Common successors.
        std::vector<int> ss, ts;
        for (int ti : fsm.transitions_from(s))
          ss.push_back(fsm.transitions()[static_cast<std::size_t>(ti)].to);
        for (int ti : fsm.transitions_from(t))
          ts.push_back(fsm.transitions()[static_cast<std::size_t>(ti)].to);
        std::sort(ss.begin(), ss.end());
        ss.erase(std::unique(ss.begin(), ss.end()), ss.end());
        std::sort(ts.begin(), ts.end());
        ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
        std::vector<int> common;
        std::set_intersection(ss.begin(), ss.end(), ts.begin(), ts.end(),
                              std::back_inserter(common));
        v += static_cast<double>(common.size());
        w[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)] += v;
        w[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] += v;
      }
    }
  }
  return w;
}

Encoding assign_states(const Fsm& fsm, EncodeAlgo algo, std::uint64_t seed) {
  const int n = fsm.num_states();
  Encoding enc;

  if (algo == EncodeAlgo::kOneHot) {
    enc.bits = n;
    enc.code.resize(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      BitVec c(static_cast<std::size_t>(n));
      c.set(static_cast<std::size_t>(s), true);
      enc.code[static_cast<std::size_t>(s)] = std::move(c);
    }
    return enc;
  }

  enc.bits = min_bits_for(n);
  enc.code.assign(static_cast<std::size_t>(n), BitVec());

  if (algo == EncodeAlgo::kNatural) {
    // Reset state 0, others in index order.
    std::vector<int> order;
    order.push_back(fsm.reset_state());
    for (int s = 0; s < n; ++s)
      if (s != fsm.reset_state()) order.push_back(s);
    for (std::size_t i = 0; i < order.size(); ++i)
      enc.code[static_cast<std::size_t>(order[i])] = BitVec::from_value(
          static_cast<std::size_t>(enc.bits), i);
    return enc;
  }

  const auto w = state_affinity(fsm, algo);
  Rng rng(seed ^ 0xe4c0deu);

  // Placement order: reset first, then descending total affinity.
  std::vector<int> order;
  order.push_back(fsm.reset_state());
  {
    std::vector<int> rest;
    for (int s = 0; s < n; ++s)
      if (s != fsm.reset_state()) rest.push_back(s);
    std::sort(rest.begin(), rest.end(), [&w](int a, int b) {
      double ta = 0, tb = 0;
      for (double v : w[static_cast<std::size_t>(a)]) ta += v;
      for (double v : w[static_cast<std::size_t>(b)]) tb += v;
      if (ta != tb) return ta > tb;
      return a < b;
    });
    order.insert(order.end(), rest.begin(), rest.end());
  }

  const std::size_t num_codes = 1ULL << enc.bits;
  std::vector<bool> used(num_codes, false);
  std::vector<int> placed;

  for (int s : order) {
    std::size_t best_code = 0;
    double best_cost = 0;
    bool have = false;
    for (std::size_t c = 0; c < num_codes; ++c) {
      if (used[c]) continue;
      const BitVec cand =
          BitVec::from_value(static_cast<std::size_t>(enc.bits), c);
      double cost = 0;
      for (int p : placed)
        cost += w[static_cast<std::size_t>(s)][static_cast<std::size_t>(p)] *
                static_cast<double>(
                    hamming(cand, enc.code[static_cast<std::size_t>(p)]));
      if (!have || cost < best_cost) {
        have = true;
        best_cost = cost;
        best_code = c;
      }
    }
    SATPG_CHECK(have);
    used[best_code] = true;
    enc.code[static_cast<std::size_t>(s)] =
        BitVec::from_value(static_cast<std::size_t>(enc.bits), best_code);
    placed.push_back(s);
  }
  // Reset state ended on code 0 (first placement, zero cost everywhere, and
  // code 0 is scanned first).
  SATPG_CHECK(enc.code[static_cast<std::size_t>(fsm.reset_state())].none());
  return enc;
}

}  // namespace satpg
