// Technology mapping onto the mcnc_lite library.
//
// Input: a structurally arbitrary netlist (wide AND/OR gates from two-level
// covers, NOT/BUF chains, constants). Output: a netlist whose every gate is
// a library cell (fan-in ≤ 4) with delay/area annotated.
//
// Passes:
//   1. constant propagation + double-inverter elimination,
//   2. fan-in decomposition of wide AND/OR gates — balanced trees in delay
//      mode (shorter critical path), linear chains in area mode,
//   3. NOT(AND)→NAND / NOT(OR)→NOR merging (single-fanout inverters only),
//   4. structural sharing of identical gates (area mode only),
//   5. dead-gate sweep + library annotation.
#pragma once

#include "netlist/netlist.h"

namespace satpg {

struct TechMapOptions {
  bool area_mode = false;  ///< chains + sharing (rugged) vs. balanced (delay)
};

void tech_map(Netlist& nl, const TechMapOptions& opts);

/// Longest register-to-register / PI-to-PO combinational delay using the
/// node delay annotations (the paper's "delay (nsec)" column).
double critical_path_delay(const Netlist& nl);

}  // namespace satpg
