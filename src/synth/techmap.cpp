#include "synth/techmap.h"

#include <algorithm>
#include <map>
#include <string>

#include "synth/library.h"

namespace satpg {

namespace {

// Fresh unique gate name.
std::string fresh_name(const Netlist& nl, const std::string& base) {
  for (int k = 0;; ++k) {
    std::string name = base + "_" + std::to_string(k);
    if (nl.find(name) == kNoNode) return name;
  }
}

// ---- pass 1: constant propagation + inverter chains -----------------------

// Returns the replacement driver for `id` if it simplifies, else kNoNode.
NodeId simplify_node(Netlist& nl, NodeId id, NodeId const0, NodeId const1) {
  const auto& n = nl.node(id);
  if (!is_combinational(n.type)) return kNoNode;

  auto is_c0 = [&](NodeId f) { return nl.node(f).type == GateType::kConst0; };
  auto is_c1 = [&](NodeId f) { return nl.node(f).type == GateType::kConst1; };

  switch (n.type) {
    case GateType::kBuf:
      return n.fanins[0];
    case GateType::kNot: {
      const NodeId f = n.fanins[0];
      if (nl.node(f).type == GateType::kNot) return nl.node(f).fanins[0];
      if (is_c0(f)) return const1;
      if (is_c1(f)) return const0;
      return kNoNode;
    }
    case GateType::kAnd:
    case GateType::kNand: {
      bool any0 = false;
      std::vector<NodeId> keep;
      for (NodeId f : n.fanins) {
        if (is_c0(f)) any0 = true;
        else if (!is_c1(f)) keep.push_back(f);
      }
      const bool invert = n.type == GateType::kNand;
      if (any0) return invert ? const1 : const0;
      if (keep.empty()) return invert ? const0 : const1;
      if (keep.size() == 1 && !invert) return keep[0];
      if (keep.size() != n.fanins.size() && keep.size() >= 2) {
        auto& m = nl.node_mut(id);
        m.fanins = keep;
      } else if (keep.size() == 1 && invert) {
        // NAND(x) == NOT(x): rebuild as NOT.
        auto& m = nl.node_mut(id);
        m.type = GateType::kNot;
        m.fanins = keep;
      }
      return kNoNode;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool any1 = false;
      std::vector<NodeId> keep;
      for (NodeId f : n.fanins) {
        if (is_c1(f)) any1 = true;
        else if (!is_c0(f)) keep.push_back(f);
      }
      const bool invert = n.type == GateType::kNor;
      if (any1) return invert ? const0 : const1;
      if (keep.empty()) return invert ? const1 : const0;
      if (keep.size() == 1 && !invert) return keep[0];
      if (keep.size() != n.fanins.size() && keep.size() >= 2) {
        auto& m = nl.node_mut(id);
        m.fanins = keep;
      } else if (keep.size() == 1 && invert) {
        auto& m = nl.node_mut(id);
        m.type = GateType::kNot;
        m.fanins = keep;
      }
      return kNoNode;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      // Only constant folding for arity-2.
      if (n.fanins.size() != 2) return kNoNode;
      const NodeId a = n.fanins[0], b = n.fanins[1];
      const bool invert = n.type == GateType::kXnor;
      auto fold = [&](NodeId x, NodeId cnode) -> NodeId {
        const bool cval = (nl.node(cnode).type == GateType::kConst1);
        const bool flip = cval != invert;
        if (!flip) return x;
        // Need NOT(x): synthesize a NOT gate.
        const NodeId inv = nl.add_gate(GateType::kNot,
                                       fresh_name(nl, "tm_inv"), {x});
        return inv;
      };
      if (is_c0(a) || is_c1(a)) return fold(b, a);
      if (is_c0(b) || is_c1(b)) return fold(a, b);
      return kNoNode;
    }
    default:
      return kNoNode;
  }
}

void propagate_constants(Netlist& nl) {
  // Ensure shared constant nodes exist (created lazily).
  NodeId const0 = kNoNode, const1 = kNoNode;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto& n = nl.node(static_cast<NodeId>(i));
    if (n.dead) continue;
    if (n.type == GateType::kConst0 && const0 == kNoNode)
      const0 = static_cast<NodeId>(i);
    if (n.type == GateType::kConst1 && const1 == kNoNode)
      const1 = static_cast<NodeId>(i);
  }
  if (const0 == kNoNode) const0 = nl.add_const(false, fresh_name(nl, "c0"));
  if (const1 == kNoNode) const1 = nl.add_const(true, fresh_name(nl, "c1"));

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : std::vector<NodeId>(nl.topo_order())) {
      if (nl.node(id).dead) continue;
      const NodeId repl = simplify_node(nl, id, const0, const1);
      if (repl != kNoNode && repl != id) {
        nl.replace_uses(id, repl);
        if (id != const0 && id != const1) nl.kill_node(id);
        changed = true;
      }
    }
  }
}

// ---- pass 2: fan-in decomposition ------------------------------------------

void decompose_wide(Netlist& nl, bool area_mode) {
  bool changed = true;
  while (changed) {
    changed = false;
    const std::size_t count = nl.num_nodes();
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId id = static_cast<NodeId>(i);
      const auto& n = nl.node(id);
      if (n.dead) continue;
      if (n.type != GateType::kAnd && n.type != GateType::kOr &&
          n.type != GateType::kNand && n.type != GateType::kNor)
        continue;
      if (n.fanins.size() <= static_cast<std::size_t>(kMaxLibFanin)) continue;

      const GateType inner =
          (n.type == GateType::kAnd || n.type == GateType::kNand)
              ? GateType::kAnd
              : GateType::kOr;
      std::vector<NodeId> work = n.fanins;
      if (area_mode) {
        // Linear chain: group the first 4, keep the rest.
        std::vector<NodeId> grp(work.begin(), work.begin() + kMaxLibFanin);
        const NodeId g =
            nl.add_gate(inner, fresh_name(nl, "tm_chain"), grp);
        std::vector<NodeId> rest{g};
        rest.insert(rest.end(), work.begin() + kMaxLibFanin, work.end());
        nl.node_mut(id).fanins = rest;
      } else {
        // Balanced: split into ceil(k/4) groups of near-equal size.
        const std::size_t k = work.size();
        const std::size_t groups = (k + kMaxLibFanin - 1) / kMaxLibFanin;
        std::vector<NodeId> tops;
        std::size_t at = 0;
        for (std::size_t g = 0; g < groups; ++g) {
          const std::size_t take = (k - at + (groups - g) - 1) / (groups - g);
          std::vector<NodeId> grp(work.begin() + static_cast<std::ptrdiff_t>(at),
                                  work.begin() +
                                      static_cast<std::ptrdiff_t>(at + take));
          at += take;
          if (grp.size() == 1)
            tops.push_back(grp[0]);
          else
            tops.push_back(
                nl.add_gate(inner, fresh_name(nl, "tm_bal"), grp));
        }
        nl.node_mut(id).fanins = tops;
      }
      changed = true;
    }
  }
}

// ---- pass 3: NAND/NOR merging ----------------------------------------------

void merge_inverters(Netlist& nl) {
  const auto& fo = nl.fanouts();
  const std::size_t count = nl.num_nodes();
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const auto& n = nl.node(id);
    if (n.dead || n.type != GateType::kNot) continue;
    const NodeId src = n.fanins[0];
    const auto& s = nl.node(src);
    if (s.dead) continue;
    // Merge only when the inverter is the AND/OR's sole fanout.
    if (fo[static_cast<std::size_t>(src)].size() != 1) continue;
    if (s.type == GateType::kAnd) {
      auto fanins = s.fanins;
      auto& m = nl.node_mut(id);
      m.type = GateType::kNand;
      m.fanins = fanins;
    } else if (s.type == GateType::kOr) {
      auto fanins = s.fanins;
      auto& m = nl.node_mut(id);
      m.type = GateType::kNor;
      m.fanins = fanins;
    }
  }
}

// ---- pass 4: structural sharing --------------------------------------------

void share_structural(Netlist& nl) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::string, NodeId> seen;
    for (NodeId id : std::vector<NodeId>(nl.topo_order())) {
      const auto& n = nl.node(id);
      if (n.dead || !is_combinational(n.type)) continue;
      std::vector<NodeId> key_fanins = n.fanins;
      // AND/OR-family inputs are order-insensitive.
      if (n.type != GateType::kBuf && n.type != GateType::kNot)
        std::sort(key_fanins.begin(), key_fanins.end());
      std::string key = std::to_string(static_cast<int>(n.type));
      for (NodeId f : key_fanins) key += "," + std::to_string(f);
      auto [it, inserted] = seen.emplace(key, id);
      if (!inserted && it->second != id) {
        nl.replace_uses(id, it->second);
        nl.kill_node(id);
        changed = true;
      }
    }
  }
}

// ---- pass 5: dead sweep -----------------------------------------------------

void sweep_dead(Netlist& nl) {
  bool changed = true;
  while (changed) {
    changed = false;
    const auto& fo = nl.fanouts();
    std::vector<NodeId> dead;
    for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
      const NodeId id = static_cast<NodeId>(i);
      const auto& n = nl.node(id);
      if (n.dead) continue;
      if (n.type == GateType::kInput || n.type == GateType::kOutput ||
          n.type == GateType::kDff)
        continue;
      if (fo[i].empty()) dead.push_back(id);
    }
    for (NodeId id : dead) {
      nl.kill_node(id);
      changed = true;
    }
  }
  nl.compact();
}

}  // namespace

void tech_map(Netlist& nl, const TechMapOptions& opts) {
  propagate_constants(nl);
  decompose_wide(nl, opts.area_mode);
  merge_inverters(nl);
  if (opts.area_mode) share_structural(nl);
  sweep_dead(nl);
  annotate_library(nl);
  SATPG_CHECK(nl.validate() == std::nullopt);
}

double critical_path_delay(const Netlist& nl) {
  // First pass: combinational arrival times (DFF outputs/PIs launch at 0).
  std::vector<double> arrive(nl.num_nodes(), 0.0);
  for (NodeId id : nl.topo_order()) {
    const auto& n = nl.node(id);
    if (!is_combinational(n.type)) continue;
    double in_max = 0.0;
    for (NodeId f : n.fanins)
      in_max = std::max(in_max, arrive[static_cast<std::size_t>(f)]);
    arrive[static_cast<std::size_t>(id)] = in_max + n.delay;
  }
  // Second pass: paths terminate at PO markers and DFF D pins. (DFFs sit
  // early in topo order — they are value sources — so their D-pin arrival
  // must be read after the full combinational sweep.)
  double worst = 0.0;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto& n = nl.node(static_cast<NodeId>(i));
    if (n.dead) continue;
    if (n.type == GateType::kOutput || n.type == GateType::kDff)
      worst = std::max(worst, arrive[static_cast<std::size_t>(n.fanins[0])]);
  }
  return worst;
}

}  // namespace satpg
