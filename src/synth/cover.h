// Cube-cover algebra and espresso-style two-level minimization.
//
// Covers are positional-cube lists (reusing fsm::Cube) over a fixed
// variable count. Minimization follows the classic espresso loop on a
// single-output function with a don't-care set:
//
//   EXPAND      — enlarge each cube literal-by-literal while it stays inside
//                 ON ∪ DC (validity via cofactor tautology, no complement
//                 computation), absorbing any cubes the expansion covers.
//   IRREDUNDANT — drop cubes covered by the rest of the cover plus DC.
//
// The "rugged" synthesis script iterates EXPAND/IRREDUNDANT twice with
// different literal orders; the "delay" script runs one pass (see
// scripts.h). This is deliberately simpler than full espresso (no REDUCE /
// LASTGASP) — adequate for the study's function sizes and fully tested
// against exhaustive truth tables.
#pragma once

#include <vector>

#include "base/rng.h"
#include "fsm/fsm.h"

namespace satpg {

using Cover = std::vector<Cube>;

/// Cofactor of a cover with respect to a cube: cubes that conflict with
/// `c` are dropped, agreeing literals become don't-cares.
Cover cover_cofactor(const Cover& cover, const Cube& c);

/// Is the cover a tautology (covers every minterm)?
bool cover_tautology(const Cover& cover, std::size_t num_vars);

/// Is cube `c` entirely inside `cover` (semantically)?
bool cover_contains_cube(const Cover& cover, const Cube& c,
                         std::size_t num_vars);

/// Does the cover evaluate to 1 on this minterm?
bool cover_matches(const Cover& cover, const BitVec& minterm);

/// Single-cube containment: every minterm of a is a minterm of b.
bool cube_contains(const Cube& outer, const Cube& inner);

struct EspressoOptions {
  int passes = 1;           ///< EXPAND+IRREDUNDANT iterations
  std::uint64_t seed = 1;   ///< literal-order shuffling between passes
};

/// Minimize ON against DC; result covers ON and stays inside ON ∪ DC.
Cover espresso_lite(const Cover& on, const Cover& dc, std::size_t num_vars,
                    const EspressoOptions& opts = {});

/// Literal count of a cover (cost proxy used by tests and scripts).
std::size_t cover_literal_count(const Cover& cover);

}  // namespace satpg
