// State assignment (the study's `jedi` substitute).
//
// Three heuristics mirroring jedi's algorithm switch, plus one-hot and
// natural orderings for ablation studies:
//
//   kInputDominant  (.ji) — states sharing predecessors are given close
//                           codes (their next-state cubes then share input
//                           literals).
//   kOutputDominant (.jo) — states with similar output behaviour and shared
//                           successors are given close codes.
//   kCombined       (.jc) — sum of the two affinity measures.
//
// All minimum-bit encoders place the reset state at code 0 (the explicit
// reset line synthesized later forces the all-zero state in one cycle) and
// assign the remaining states by greedy hypercube embedding: highest total
// affinity first, each taking the free code minimizing
// Σ affinity(s,placed) · hamming(code, code_placed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/bitvec.h"
#include "fsm/fsm.h"

namespace satpg {

enum class EncodeAlgo {
  kInputDominant,
  kOutputDominant,
  kCombined,
  kOneHot,
  kNatural,  ///< state index in binary; baseline/ablation
};

/// Paper-style suffix for circuit names (".ji", ".jo", ".jc", ".oh", ".nat").
const char* encode_algo_suffix(EncodeAlgo algo);

struct Encoding {
  int bits = 0;
  std::vector<BitVec> code;  ///< per state, each `bits` wide

  /// State index whose code equals `bits_value`, or -1 (unused code).
  int state_of(const BitVec& bits_value) const;
};

Encoding assign_states(const Fsm& fsm, EncodeAlgo algo,
                       std::uint64_t seed = 1);

/// Pairwise affinity matrix used by the embedding (exposed for tests).
std::vector<std::vector<double>> state_affinity(const Fsm& fsm,
                                                EncodeAlgo algo);

}  // namespace satpg
