#include "synth/scripts.h"

#include <algorithm>
#include <map>
#include <utility>

#include "synth/techmap.h"

namespace satpg {

const char* script_suffix(ScriptKind kind) {
  return kind == ScriptKind::kRugged ? ".sr" : ".sd";
}

EspressoOptions script_espresso_options(ScriptKind kind, std::uint64_t seed) {
  EspressoOptions opts;
  opts.passes = kind == ScriptKind::kRugged ? 2 : 1;
  opts.seed = seed;
  return opts;
}

int extract_common_cubes(Netlist& nl) {
  int extracted = 0;
  for (int round = 0; round < 1000; ++round) {
    // Count unordered fanin pairs across AND gates with >= 3 fanins.
    std::map<std::pair<NodeId, NodeId>, int> freq;
    for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
      const auto& n = nl.node(static_cast<NodeId>(i));
      if (n.dead || n.type != GateType::kAnd || n.fanins.size() < 3) continue;
      std::vector<NodeId> f = n.fanins;
      std::sort(f.begin(), f.end());
      for (std::size_t a = 0; a < f.size(); ++a)
        for (std::size_t b = a + 1; b < f.size(); ++b)
          if (f[a] != f[b]) ++freq[{f[a], f[b]}];
    }
    std::pair<NodeId, NodeId> best{kNoNode, kNoNode};
    int best_count = 1;  // require at least 2 occurrences to profit
    for (const auto& [pair, count] : freq)
      if (count > best_count) {
        best_count = count;
        best = pair;
      }
    if (best.first == kNoNode) break;

    // Materialize the shared AND2 and substitute it in every host gate.
    const NodeId shared = nl.add_gate(
        GateType::kAnd, "xc_" + std::to_string(extracted) + "_r" +
                            std::to_string(round),
        {best.first, best.second});
    for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
      const NodeId id = static_cast<NodeId>(i);
      if (id == shared) continue;
      const auto& n = nl.node(id);
      if (n.dead || n.type != GateType::kAnd || n.fanins.size() < 3) continue;
      auto has = [&n](NodeId x) {
        return std::find(n.fanins.begin(), n.fanins.end(), x) !=
               n.fanins.end();
      };
      if (!has(best.first) || !has(best.second)) continue;
      std::vector<NodeId> next;
      for (NodeId f : n.fanins)
        if (f != best.first && f != best.second) next.push_back(f);
      next.push_back(shared);
      nl.node_mut(id).fanins = next;
    }
    ++extracted;
  }
  return extracted;
}

void run_script(Netlist& nl, ScriptKind kind) {
  TechMapOptions opts;
  opts.area_mode = kind == ScriptKind::kRugged;
  if (kind == ScriptKind::kRugged) extract_common_cubes(nl);
  tech_map(nl, opts);
}

}  // namespace satpg
