#include "synth/library.h"

namespace satpg {

LibCell lib_cell(GateType t, std::size_t arity) {
  switch (t) {
    case GateType::kBuf:
      SATPG_CHECK(arity == 1);
      return {0.8, 1.0};
    case GateType::kNot:
      SATPG_CHECK(arity == 1);
      return {1.0, 1.0};
    case GateType::kNand:
      SATPG_CHECK(arity >= 2 && arity <= 4);
      return {1.0 + 0.2 * static_cast<double>(arity - 2),
              2.0 + static_cast<double>(arity - 2)};
    case GateType::kNor:
      SATPG_CHECK(arity >= 2 && arity <= 4);
      return {1.1 + 0.3 * static_cast<double>(arity - 2),
              2.0 + static_cast<double>(arity - 2)};
    case GateType::kAnd:
      SATPG_CHECK(arity >= 2 && arity <= 4);
      return {1.6 + 0.2 * static_cast<double>(arity - 2),
              3.0 + static_cast<double>(arity - 2)};
    case GateType::kOr:
      SATPG_CHECK(arity >= 2 && arity <= 4);
      return {1.7 + 0.3 * static_cast<double>(arity - 2),
              3.0 + static_cast<double>(arity - 2)};
    case GateType::kXor:
      SATPG_CHECK(arity == 2);
      return {1.9, 5.0};
    case GateType::kXnor:
      SATPG_CHECK(arity == 2);
      return {2.0, 5.0};
    case GateType::kConst0:
    case GateType::kConst1:
      return {0.0, 0.0};
    default:
      SATPG_CHECK_MSG(false, "lib_cell: unsupported gate type");
  }
  return {0, 0};
}

void annotate_library(Netlist& nl) {
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const auto& n = nl.node(id);
    if (n.dead) continue;
    if (is_combinational(n.type)) {
      SATPG_CHECK_MSG(n.fanins.size() <= kMaxLibFanin,
                      "annotate_library: gate exceeds library fan-in");
      const LibCell cell = lib_cell(n.type, n.fanins.size());
      auto& m = nl.node_mut(id);
      m.delay = cell.delay;
      m.area = cell.area;
    } else if (n.type == GateType::kDff) {
      auto& m = nl.node_mut(id);
      m.delay = 0.0;
      m.area = 8.0;
    }
  }
}

}  // namespace satpg
