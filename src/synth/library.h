// "mcnc_lite" gate library.
//
// The paper maps onto a reduced mcnc.genlib containing only gate types its
// ATPGs understand; this table plays that role. Delays are in the same
// arbitrary "ns" units the paper's Table 7 uses, areas in unit cells.
// Fan-in is capped at 4 — the tech mapper decomposes wider gates.
#pragma once

#include "netlist/netlist.h"

namespace satpg {

constexpr int kMaxLibFanin = 4;

struct LibCell {
  double delay;
  double area;
};

/// Cell parameters for a gate type at a given fan-in count.
/// CHECK-fails for unsupported (type, arity) combinations.
LibCell lib_cell(GateType t, std::size_t arity);

/// Annotate every combinational gate's delay/area from the library and set
/// DFF area. CHECK-fails if a gate exceeds kMaxLibFanin (run the tech
/// mapper first).
void annotate_library(Netlist& nl);

}  // namespace satpg
