#include "synth/cover.h"

#include <algorithm>
#include <numeric>

namespace satpg {

Cover cover_cofactor(const Cover& cover, const Cube& c) {
  Cover out;
  out.reserve(cover.size());
  for (const auto& cube : cover) {
    // Conflict: both care about a bit and disagree.
    if (((cube.value ^ c.value) & cube.care & c.care).any()) continue;
    Cube r = cube;
    // Bits fixed by c become don't-cares in the cofactor.
    r.care &= ~c.care;
    r.value &= r.care;
    out.push_back(std::move(r));
  }
  return out;
}

bool cover_tautology(const Cover& cover, std::size_t num_vars) {
  return cubes_cover_everything(cover, num_vars);
}

bool cube_contains(const Cube& outer, const Cube& inner) {
  // outer ⊇ inner: outer's cared bits are cared and equal in inner.
  if (!outer.care.is_subset_of(inner.care)) return false;
  return ((outer.value ^ inner.value) & outer.care).none();
}

bool cover_contains_cube(const Cover& cover, const Cube& c,
                         std::size_t num_vars) {
  // Fast path: a single cube already contains c.
  for (const auto& cube : cover)
    if (cube_contains(cube, c)) return true;
  return cover_tautology(cover_cofactor(cover, c), num_vars);
}

bool cover_matches(const Cover& cover, const BitVec& minterm) {
  for (const auto& c : cover)
    if (c.matches(minterm)) return true;
  return false;
}

std::size_t cover_literal_count(const Cover& cover) {
  std::size_t n = 0;
  for (const auto& c : cover) n += c.care.count();
  return n;
}

namespace {

// EXPAND one cube: drop literals greedily in the given order while the
// enlarged cube remains inside on ∪ dc.
Cube expand_cube(Cube c, const Cover& on, const Cover& dc,
                 std::size_t num_vars, const std::vector<std::size_t>& order) {
  Cover care_set = on;
  care_set.insert(care_set.end(), dc.begin(), dc.end());
  for (std::size_t bit : order) {
    if (!c.care.get(bit)) continue;
    Cube trial = c;
    trial.care.set(bit, false);
    trial.value.set(bit, false);
    if (cover_contains_cube(care_set, trial, num_vars)) c = trial;
  }
  return c;
}

}  // namespace

Cover espresso_lite(const Cover& on, const Cover& dc, std::size_t num_vars,
                    const EspressoOptions& opts) {
  Rng rng(opts.seed);
  Cover cover = on;
  // Drop ON cubes entirely inside DC up front (they are free).
  if (!dc.empty()) {
    Cover kept;
    for (auto& c : cover)
      if (!cover_contains_cube(dc, c, num_vars)) kept.push_back(std::move(c));
    cover = std::move(kept);
  }

  for (int pass = 0; pass < std::max(1, opts.passes); ++pass) {
    // ---- EXPAND ----
    std::vector<std::size_t> order(num_vars);
    std::iota(order.begin(), order.end(), 0u);
    if (pass > 0) {
      // Shuffle literal order between passes to escape local minima.
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1],
                  order[static_cast<std::size_t>(rng.next_below(i))]);
    }
    // Expand large cubes first — they absorb more.
    std::sort(cover.begin(), cover.end(), [](const Cube& a, const Cube& b) {
      return a.care.count() < b.care.count();
    });
    Cover expanded;
    for (std::size_t i = 0; i < cover.size(); ++i) {
      // Skip cubes already absorbed by an expanded one.
      bool absorbed = false;
      for (const auto& e : expanded)
        if (cube_contains(e, cover[i])) {
          absorbed = true;
          break;
        }
      if (absorbed) continue;
      expanded.push_back(expand_cube(cover[i], on, dc, num_vars, order));
    }
    cover = std::move(expanded);

    // ---- IRREDUNDANT ----
    // Greedy: try removing cubes (smallest first); keep removal if the rest
    // of the cover plus DC still contains the cube.
    std::sort(cover.begin(), cover.end(), [](const Cube& a, const Cube& b) {
      return a.care.count() > b.care.count();
    });
    for (std::size_t i = 0; i < cover.size();) {
      Cover rest = dc;
      for (std::size_t j = 0; j < cover.size(); ++j)
        if (j != i) rest.push_back(cover[j]);
      if (cover_contains_cube(rest, cover[i], num_vars))
        cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(i));
      else
        ++i;
    }
  }
  return cover;
}

}  // namespace satpg
