// Top-level sequential synthesis flow (the study's SIS substitute).
//
// Pipeline (mirrors the paper's §2.1):
//   1. state minimization                      (fsm/minimize — "stamina")
//   2. state assignment, minimum-bit           (synth/encode — "jedi")
//   3. two-level covers for every next-state and output function, with
//      unused state codes as external don't cares ("extract_seq_dc")
//   4. espresso-style minimization per function
//   5. two-level AND-OR netlist + explicit reset line
//   6. multi-level script + tech map           (synth/scripts)
//
// The result powers up unknown; one cycle of rst=1 forces the all-zero
// state, which is always the reset state's code.
#pragma once

#include <cstdint>
#include <string>

#include "fsm/fsm.h"
#include "netlist/netlist.h"
#include "synth/cover.h"
#include "synth/encode.h"
#include "synth/scripts.h"

namespace satpg {

struct SynthOptions {
  EncodeAlgo encode = EncodeAlgo::kCombined;
  ScriptKind script = ScriptKind::kRugged;
  bool add_reset = true;   ///< synthesize the explicit reset input "rst"
  std::uint64_t seed = 1;  ///< espresso literal shuffling + encoder ties
};

struct SynthResult {
  Netlist netlist;
  Encoding encoding;
  Fsm minimized;         ///< post-stamina machine actually implemented
  std::string name;      ///< e.g. "s510.jc.sd" (paper naming convention)
};

/// Synthesize a mapped netlist from an FSM. Input/FF/output node names are
/// "x<i>", "st<b>", "z<i>", plus "rst" when add_reset.
SynthResult synthesize(const Fsm& fsm, const SynthOptions& opts);

/// The two-level covers (ON minimized against DC) for each next-state bit
/// and each primary output, over variables [0..ni) = inputs and
/// [ni..ni+bits) = state bits. Exposed for tests and for the netlist
/// generator.
struct TwoLevel {
  std::size_t num_vars = 0;
  std::vector<Cover> next_state;  ///< per state bit
  std::vector<Cover> outputs;     ///< per primary output
};
TwoLevel build_two_level(const Fsm& fsm, const Encoding& enc,
                         const EspressoOptions& espresso);

/// Build the AND-OR netlist from covers (pre-script form).
Netlist covers_to_netlist(const Fsm& fsm, const Encoding& enc,
                          const TwoLevel& tl, bool add_reset,
                          const std::string& name);

}  // namespace satpg
