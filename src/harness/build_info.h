// Build provenance for reports (DESIGN.md §11): which compiler, build
// type, sanitizer, and SIMD tier produced a given artifact. Two runs that
// disagree on any of these are not comparable byte-for-byte at the
// performance level even when their deterministic result JSON matches, so
// every report carries this block and `satpg diff` surfaces mismatches
// instead of silently comparing apples to oranges.
//
// Everything here is fixed at compile time except the dispatched SIMD
// tier, which is the one-time CPUID resolution — stable for the life of
// the process, so the block is still deterministic per (binary, machine).
#pragma once

#include <iosfwd>
#include <string>

namespace satpg {

struct BuildInfo {
  std::string compiler;        ///< "gcc" / "clang" / "unknown"
  std::string compiler_version;
  std::string build_type;      ///< CMAKE_BUILD_TYPE, "unknown" if not baked
  std::string sanitizer;       ///< "none" / "address" / "thread"
  std::string simd_compiled;   ///< widest wide-fsim kernel in the binary
  std::string simd_dispatched; ///< tier the running CPU actually selects
};

/// The running binary's provenance (cached after the first call).
const BuildInfo& build_info();

/// Writes the "build_info" JSON object (no trailing newline), keys in
/// fixed order. `indent` spaces prefix the closing brace's line.
void write_build_info_json(std::ostream& os, const BuildInfo& info,
                           int indent);

}  // namespace satpg
