// Experiment drivers: one function per table/figure of the paper.
//
// Each returns a formatted Table whose rows mirror the paper's layout.
// "CPU" columns report the deterministic work metric (kilo node-evaluations
// — kEv) and wall seconds; ratios are computed on the work metric. See
// EXPERIMENTS.md for the measured-vs-paper comparison and the rationale for
// reporting work instead of 1995 DECstation seconds.
//
// `budget_scale` scales per-fault backtrack/eval budgets: 1.0 ≈ minutes for
// the full suite on one core; larger values sharpen the retimed-circuit
// blowups (the paper burned >5000 CPU hours — the shape, not the absolute
// magnitude, is the reproduction target).
#pragma once

#include <string>

#include "atpg/engine.h"
#include "base/table.h"
#include "base/telemetry_flags.h"
#include "fsim/fsim.h"
#include "harness/suite.h"

namespace satpg {

struct ExperimentOptions {
  double budget_scale = 1.0;
  std::uint64_t seed = 1;
  /// ATPG worker threads (0 = hardware). Every experiment routes through
  /// the fault-parallel driver, whose results are bit-identical for any
  /// thread count — tables never depend on this knob.
  unsigned num_threads = 0;
  /// Wall-clock deadline per ATPG run in ms (0 = none). Timing-dependent:
  /// only for bounding exploratory runs, never for table reproduction.
  std::uint64_t deadline_ms = 0;
  /// Fault-simulation engine/width selection. Results are byte-identical
  /// across engines and SIMD tiers by contract, so this knob only moves
  /// wall-clock (and the engine-scoped fsim.wide.* counters).
  FsimOptions fsim;
};

/// Baseline engine budgets used by all experiments, scaled.
AtpgRunOptions scaled_run_options(const ExperimentOptions& opts,
                                  EngineKind kind);

Table run_table1_fsms(Suite& suite);
Table run_table2_hitec(Suite& suite, const ExperimentOptions& opts);
Table run_table3_attest(Suite& suite, const ExperimentOptions& opts);
Table run_table4_sest(Suite& suite, const ExperimentOptions& opts);
Table run_table5_structure(Suite& suite, const ExperimentOptions& opts);
Table run_table6_density(Suite& suite, const ExperimentOptions& opts);
Table run_table7_sensitivity(Suite& suite, const ExperimentOptions& opts);
Table run_table8_replay(Suite& suite, const ExperimentOptions& opts);
/// Figure 3: per-circuit (cumulative kEv, FE%) series over the Table 7
/// ladder, printed as aligned columns.
Table run_fig3_fe_vs_cpu(Suite& suite, const ExperimentOptions& opts);

/// Fourth engine column for Tables 2-4: the SAT/CDCL engine on the
/// Table-4 circuit pairs, side by side with the structural baseline —
/// coverage, work, solver counters, and the per-engine
/// `effort_invalid_frac` the attribution oracle makes comparable across
/// engines (DESIGN.md §9).
Table run_table9_cdcl(Suite& suite, const ExperimentOptions& opts);

// Ablations motivated by §5 of the paper.
Table run_ablation_learning(Suite& suite, const ExperimentOptions& opts);
/// Cross-fault cube sharing on vs off (--no-shared-learning) for the cdcl
/// engine on retimed twins: total conflicts, cube exports, and work.
Table run_ablation_cdcl_sharing(Suite& suite, const ExperimentOptions& opts);
Table run_ablation_budget(Suite& suite, const ExperimentOptions& opts);
Table run_ablation_encoding(const ExperimentOptions& opts);

/// Tiny flag parser shared by the bench mains: recognizes
/// --budget=<float>, --seed=<n>, --scale=<float> (FSM scale),
/// --cache=<dir>, --threads=<n>, --deadline-ms=<n>,
/// --metrics-json=<file> (dump the metrics registry after the run),
/// --trace-json=<file> (record a Chrome trace_event timeline),
/// --width=<64|128|256|512> (pin the wide fsim SIMD tier),
/// --force-scalar (pin the portable scalar fsim kernel), and
/// --no-sidecar (suppress the BENCH_*.json table sidecar). Unknown flags
/// abort with a usage message.
struct BenchConfig {
  ExperimentOptions experiment;
  SuiteOptions suite;
  TelemetryFlags telemetry;  ///< --metrics-json / --trace-json
  bool write_sidecar = true; ///< BENCH_<bench>.json next to the table
};
BenchConfig parse_bench_flags(int argc, char** argv);

}  // namespace satpg
