#include "harness/archive.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "base/json.h"
#include "base/strutil.h"

namespace satpg {

namespace {

std::string read_file_or_throw(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Identity fields pulled out of a parsed report. The config digest hashes
/// the engine object's canonical rendering plus the circuit identity — the
/// pieces that define "the same experiment", deliberately excluding every
/// result field.
ArchiveEntry identity_of(const std::string& report_text) {
  JsonValue root;
  std::string err;
  if (!json_parse(report_text, &root, &err))
    throw std::runtime_error("report is not valid JSON: " + err);
  if (!root.is_object())
    throw std::runtime_error("report is not a JSON object");
  ArchiveEntry e;
  e.schema = root.str_or("schema", "");
  // Profile sidecars carry the same circuit/engine identity blocks as the
  // reports they ride along with, so the same digest joins the two planes.
  if (e.schema.rfind("satpg.atpg_run.", 0) != 0 &&
      e.schema.rfind("satpg.profile.", 0) != 0)
    throw std::runtime_error("not an atpg_run report or profile (schema \"" +
                             e.schema + "\")");
  const JsonValue* circuit = root.find("circuit");
  const JsonValue* engine = root.find("engine");
  if (circuit == nullptr || engine == nullptr)
    throw std::runtime_error("report lacks circuit/engine identity");
  e.circuit = circuit->str_or("name", "?");
  e.engine = engine->str_or("kind", "?");

  std::string config = e.circuit;
  config += '|';
  config += strprintf(
      "%s eval=%llu bt=%llu fwd=%llu bwd=%llu seed=%llu", e.engine.c_str(),
      static_cast<unsigned long long>(engine->uint_or("eval_limit", 0)),
      static_cast<unsigned long long>(engine->uint_or("backtrack_limit", 0)),
      static_cast<unsigned long long>(engine->uint_or("max_forward_frames", 0)),
      static_cast<unsigned long long>(
          engine->uint_or("max_backward_frames", 0)),
      static_cast<unsigned long long>(engine->uint_or("seed", 0)));
  e.config_digest = fnv1a64_hex(config);
  e.hash = fnv1a64_hex(report_text);
  return e;
}

std::string index_line(const ArchiveEntry& e) {
  return "{\"hash\": \"" + json_escape(e.hash) + "\", \"schema\": \"" +
         json_escape(e.schema) + "\", \"circuit\": \"" +
         json_escape(e.circuit) + "\", \"engine\": \"" +
         json_escape(e.engine) + "\", \"config\": \"" +
         json_escape(e.config_digest) + "\", \"path\": \"" +
         json_escape(e.path) + "\"}";
}

}  // namespace

RunArchive::RunArchive(std::string dir) : dir_(std::move(dir)) {}

std::string RunArchive::index_path() const { return dir_ + "/index.jsonl"; }

std::string RunArchive::report_path(const std::string& hash) const {
  return dir_ + "/" + hash + ".json";
}

ArchiveEntry RunArchive::add(const std::string& report_text) {
  ArchiveEntry e = identity_of(report_text);
  e.path = e.hash + ".json";

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) throw std::runtime_error("cannot create " + dir_);

  // Idempotence: an already-indexed hash means both the file and the index
  // line exist (the file is written before the line) — nothing to do.
  for (const ArchiveEntry& have : list())
    if (have.hash == e.hash) return have;

  const std::string stored = report_path(e.hash);
  if (!std::filesystem::exists(stored)) {
    std::ofstream os(stored, std::ios::binary);
    if (!os) throw std::runtime_error("cannot write " + stored);
    os << report_text;
    if (!os.good()) throw std::runtime_error("write failed: " + stored);
  }
  std::ofstream os(index_path(), std::ios::app);
  if (!os) throw std::runtime_error("cannot append " + index_path());
  os << index_line(e) << "\n";
  if (!os.good())
    throw std::runtime_error("append failed: " + index_path());
  return e;
}

ArchiveEntry RunArchive::add_file(const std::string& path) {
  return add(read_file_or_throw(path));
}

std::vector<ArchiveEntry> RunArchive::list() const {
  std::vector<ArchiveEntry> out;
  std::ifstream is(index_path());
  if (!is) return out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    JsonValue v;
    if (!json_parse(line, &v, nullptr) || !v.is_object()) continue;
    ArchiveEntry e;
    e.hash = v.str_or("hash", "");
    e.schema = v.str_or("schema", "");
    e.circuit = v.str_or("circuit", "");
    e.engine = v.str_or("engine", "");
    e.config_digest = v.str_or("config", "");
    e.path = v.str_or("path", "");
    if (!e.hash.empty()) out.push_back(std::move(e));
  }
  return out;
}

std::optional<ArchiveEntry> RunArchive::find(
    const std::string& hash_prefix) const {
  if (hash_prefix.size() < 4) return std::nullopt;
  std::optional<ArchiveEntry> match;
  for (const ArchiveEntry& e : list()) {
    if (e.hash.rfind(hash_prefix, 0) != 0) continue;
    if (e.hash == hash_prefix) return e;  // exact beats prefix
    if (match.has_value() && match->hash != e.hash) return std::nullopt;
    match = e;
  }
  return match;
}

std::string RunArchive::load(const ArchiveEntry& entry) const {
  return read_file_or_throw(dir_ + "/" + entry.path);
}

std::string load_report_spec(const RunArchive& archive,
                             const std::string& spec) {
  if (std::ifstream probe(spec, std::ios::binary); probe)
    return read_file_or_throw(spec);
  if (const auto entry = archive.find(spec)) return archive.load(*entry);
  throw std::runtime_error("\"" + spec + "\" is neither a readable file nor " +
                           "a unique hash in " + archive.dir() + "/");
}

}  // namespace satpg
