#include "harness/profile.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "base/cpu.h"
#include "base/json.h"
#include "base/strutil.h"
#include "harness/build_info.h"

namespace satpg {

namespace {

std::string num(double v) { return strprintf("%.6g", v); }

void write_totals(std::ostream& os, const ProfPhaseTotals& t) {
  os << "{\"calls\": " << t.calls;
  for (std::size_t c = 0; c < kNumProfCounters; ++c)
    os << ", \"" << prof_counter_name(static_cast<ProfCounter>(c))
       << "\": " << t.counters[c];
  // Per-block derived rates, emitted only when their inputs moved (the
  // fallback backend leaves every hardware counter at zero).
  const std::uint64_t instr = t.counter(ProfCounter::kInstructions);
  const std::uint64_t cycles = t.counter(ProfCounter::kCycles);
  const std::uint64_t refs = t.counter(ProfCounter::kCacheReferences);
  if (cycles > 0 && instr > 0)
    os << ", \"ipc\": "
       << num(static_cast<double>(instr) / static_cast<double>(cycles));
  if (refs > 0)
    os << ", \"cache_miss_pct\": "
       << num(100.0 *
              static_cast<double>(t.counter(ProfCounter::kCacheMisses)) /
              static_cast<double>(refs));
  os << "}";
}

}  // namespace

void write_profile_json(std::ostream& os, const ProfileArtifact& a) {
  const ProfSnapshot& snap = a.snap;
  os << "{\n  \"schema\": \"satpg.profile.v1\",\n";
  os << "  \"tool\": \"" << json_escape(a.tool) << "\",\n";
  // Identity shaped like the report's, so archive config digests match.
  os << "  \"circuit\": {\"name\": \"" << json_escape(a.circuit)
     << "\"},\n";
  os << "  \"engine\": {\"kind\": \"" << json_escape(a.engine_kind)
     << "\", \"eval_limit\": " << a.eval_limit
     << ", \"backtrack_limit\": " << a.backtrack_limit
     << ", \"max_forward_frames\": " << a.max_forward_frames
     << ", \"max_backward_frames\": " << a.max_backward_frames
     << ", \"seed\": " << a.seed << "},\n";
  os << "  \"build_info\": ";
  write_build_info_json(os, build_info(), 16);
  os << ",\n";
  os << "  \"host_cpu\": \"" << json_escape(cpu_model_name()) << "\",\n";
  os << "  \"backend\": \"" << prof_backend_name(snap.backend) << "\",\n";

  // Which counter slots can move under this backend: the fallback only
  // drives task_clock_ns, so readers need not guess why cycles is zero.
  os << "  \"counters_available\": [\"task_clock_ns\"";
  if (snap.backend == ProfBackend::kPerfEvent)
    for (std::size_t c = 1; c < kNumProfCounters; ++c)
      os << ", \"" << prof_counter_name(static_cast<ProfCounter>(c))
         << "\"";
  os << "],\n";

  os << "  \"wall_seconds\": " << num(snap.wall_seconds) << ",\n";
  os << "  \"work\": {\"evals\": " << a.evals
     << ", \"patterns\": " << a.patterns << "},\n";

  // Fixed shape: every phase appears, enum order == sorted-name order.
  os << "  \"phases\": {\n";
  for (std::size_t p = 0; p < kNumProfPhases; ++p) {
    const ProfPhase phase = static_cast<ProfPhase>(p);
    os << "    \"" << prof_phase_name(phase) << "\": {\"subsystem\": \""
       << prof_phase_subsystem(phase) << "\", ";
    const ProfPhaseTotals t = snap.phase(phase);
    os << "\"calls\": " << t.calls;
    for (std::size_t c = 0; c < kNumProfCounters; ++c)
      os << ", \"" << prof_counter_name(static_cast<ProfCounter>(c))
         << "\": " << t.counters[c];
    os << "}" << (p + 1 < kNumProfPhases ? ",\n" : "\n");
  }
  os << "  },\n";

  // Subsystem rollup in sorted order (atpg < cdcl < fsim < podem, and
  // the phase enum is already subsystem-contiguous in that order).
  os << "  \"subsystems\": {\n";
  {
    const char* current = nullptr;
    ProfPhaseTotals roll;
    bool first = true;
    const auto flush = [&] {
      if (current == nullptr) return;
      os << (first ? "" : ",\n") << "    \"" << current << "\": ";
      write_totals(os, roll);
      first = false;
    };
    for (std::size_t p = 0; p < kNumProfPhases; ++p) {
      const ProfPhase phase = static_cast<ProfPhase>(p);
      const char* sub = prof_phase_subsystem(phase);
      if (current == nullptr || std::string(current) != sub) {
        flush();
        current = sub;
        roll = ProfPhaseTotals{};
      }
      roll.add(snap.phase(phase));
    }
    flush();
  }
  os << "\n  },\n";

  os << "  \"total\": ";
  write_totals(os, snap.total());
  os << ",\n";

  // Cross-phase derived rates against the deterministic work units.
  os << "  \"derived\": {";
  {
    const ProfPhaseTotals total = snap.total();
    bool first = true;
    const auto field = [&](const char* key, double v) {
      os << (first ? "" : ", ") << "\"" << key << "\": " << num(v);
      first = false;
    };
    const std::uint64_t cycles = total.counter(ProfCounter::kCycles);
    const std::uint64_t task_ns =
        total.counter(ProfCounter::kTaskClockNs);
    if (a.evals > 0) {
      if (cycles > 0)
        field("cycles_per_eval", static_cast<double>(cycles) /
                                     static_cast<double>(a.evals));
      if (task_ns > 0)
        field("task_clock_ns_per_eval", static_cast<double>(task_ns) /
                                            static_cast<double>(a.evals));
      if (snap.wall_seconds > 0)
        field("evals_per_second",
              static_cast<double>(a.evals) / snap.wall_seconds);
    }
    if (a.patterns > 0 && snap.wall_seconds > 0)
      field("patterns_per_second",
            static_cast<double>(a.patterns) / snap.wall_seconds);
    // Per-tier wide-kernel cost per pattern: the SIMD anatomy behind the
    // BENCH_fsim speedup table.
    if (a.patterns > 0)
      for (const ProfPhase phase :
           {ProfPhase::kFsimWideKernelAvx2,
            ProfPhase::kFsimWideKernelAvx512,
            ProfPhase::kFsimWideKernelScalar,
            ProfPhase::kFsimWideKernelSse2}) {
        const ProfPhaseTotals t = snap.phase(phase);
        if (t.calls == 0) continue;
        const std::uint64_t ph_cycles = t.counter(ProfCounter::kCycles);
        const std::uint64_t ph_ns =
            t.counter(ProfCounter::kTaskClockNs);
        const std::string key = std::string(prof_phase_name(phase));
        if (ph_cycles > 0)
          field((key + ".cycles_per_pattern").c_str(),
                static_cast<double>(ph_cycles) /
                    static_cast<double>(a.patterns));
        if (ph_ns > 0)
          field((key + ".task_clock_ns_per_pattern").c_str(),
                static_cast<double>(ph_ns) /
                    static_cast<double>(a.patterns));
      }
  }
  os << "},\n";

  // Per-worker lanes (only lanes that recorded anything).
  os << "  \"lanes\": [";
  for (std::size_t l = 0; l < snap.lanes.size(); ++l) {
    ProfPhaseTotals t;
    for (const ProfPhaseTotals& ph : snap.lanes[l].phases) t.add(ph);
    os << (l == 0 ? "\n    " : ",\n    ") << "{\"lane\": "
       << snap.lanes[l].lane << ", ";
    os << "\"calls\": " << t.calls
       << ", \"task_clock_ns\": " << t.counter(ProfCounter::kTaskClockNs)
       << ", \"cycles\": " << t.counter(ProfCounter::kCycles) << "}";
  }
  os << "],\n";

  os << "  \"samples_dropped\": " << snap.samples_dropped << ",\n";
  os << "  \"samples\": [";
  for (std::size_t i = 0; i < snap.samples.size(); ++i) {
    const ProfSnapshot::Sample& s = snap.samples[i];
    os << (i == 0 ? "\n    " : ",\n    ") << "{\"at_ms\": " << s.at_ms
       << ", \"task_clock_ns\": " << s.task_clock_ns
       << ", \"cycles\": " << s.cycles << "}";
  }
  os << "]\n}\n";
}

bool write_profile_json(const std::string& path,
                        const ProfileArtifact& a) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  write_profile_json(os, a);
  if (!os.good()) {
    std::fprintf(stderr, "write failed: %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace satpg
