#include "harness/experiments.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "analysis/reach.h"
#include "analysis/structure.h"
#include "atpg/parallel.h"
#include "base/strutil.h"
#include "fsm/mcnc_suite.h"
#include "fsm/minimize.h"
#include "synth/techmap.h"

namespace satpg {

AtpgRunOptions scaled_run_options(const ExperimentOptions& opts,
                                  EngineKind kind) {
  AtpgRunOptions run;
  run.engine.kind = kind;
  run.engine.eval_limit =
      static_cast<std::uint64_t>(1'000'000 * opts.budget_scale);
  run.engine.backtrack_limit =
      static_cast<std::uint64_t>(1500 * opts.budget_scale);
  run.engine.max_forward_frames = 8;
  run.engine.max_backward_frames = 20;
  run.engine.verify_reject_limit = 10;
  run.random_sequences = 8;
  run.random_length = 40;
  run.seed = opts.seed;
  // Per-circuit work ceiling: keeps the largest machine (scf) from
  // dominating a table run; faults beyond the ceiling abort, exactly like
  // the paper's manually-halted million-second runs. Scale with --budget
  // for sharper numbers.
  run.total_eval_budget =
      static_cast<std::uint64_t>(120'000'000 * opts.budget_scale);
  run.fsim = opts.fsim;
  return run;
}

namespace {

// Every experiment's ATPG goes through the fault-parallel driver; with
// the scheduler's thread-count-invariant design this changes throughput,
// never table content.
AtpgRunResult run_atpg_threaded(const Netlist& nl,
                                const ExperimentOptions& opts,
                                const AtpgRunOptions& run) {
  ParallelAtpgOptions p;
  p.run = run;
  p.num_threads = opts.num_threads;
  p.deadline_ms = opts.deadline_ms;
  return run_parallel_atpg(nl, p).run;
}

std::string kev(std::uint64_t evals) {
  return strprintf("%.0f", static_cast<double>(evals) / 1000.0);
}

std::string pct(double v) { return strprintf("%.1f", v); }

// Count traversed states that are fully specified and valid.
std::size_t traversed_valid(const StateSet& traversed,
                            const ReachResult& reach) {
  std::unordered_set<std::string> valid;
  for (const auto& s : reach.states) valid.insert(s.to_string());
  std::size_t n = 0;
  for (const auto& s : traversed)
    if (s.fully_specified() && valid.count(s.to_string())) ++n;
  return n;
}

}  // namespace

Table run_table1_fsms(Suite& suite) {
  Table t({"FSM", "PI", "PO", "states", "min-states"});
  for (const auto& spec : mcnc_specs()) {
    FsmGenSpec gen = spec;
    if (suite.options().fsm_scale != 1.0)
      gen = scaled_spec(gen, suite.options().fsm_scale);
    gen.seed ^= suite.options().seed * 0x9e3779b97f4a7c15ULL;
    const Fsm fsm = generate_control_fsm(gen);
    t.add_row({fsm.name(), std::to_string(fsm.num_inputs()),
               std::to_string(fsm.num_outputs()),
               std::to_string(fsm.num_states()),
               std::to_string(minimize_fsm(fsm).num_states())});
  }
  return t;
}

namespace {

// Shared body for Tables 2-4: run `kind` on selected pairs.
Table run_engine_table(Suite& suite, const ExperimentOptions& opts,
                       EngineKind kind,
                       const std::vector<PairSpec>& pairs,
                       bool absolute_columns) {
  Table t = absolute_columns
                ? Table({"circuit", "#DFF", "%FC", "%FE", "kEv", "wall_s",
                         "CPU ratio"})
                : Table({"circuit", "%FC (orig)", "%FE (orig)", "%FC (re)",
                         "%FE (re)", "CPU ratio"});
  for (const auto& spec : pairs) {
    const Netlist orig = suite.circuit(spec.name());
    const Netlist re = suite.circuit(spec.retimed_name());
    const auto run_opts = scaled_run_options(opts, kind);
    const AtpgRunResult r0 = run_atpg_threaded(orig, opts, run_opts);
    const AtpgRunResult r1 = run_atpg_threaded(re, opts, run_opts);
    const double ratio = static_cast<double>(r1.evals) /
                         static_cast<double>(std::max<std::uint64_t>(1,
                                                                     r0.evals));
    if (absolute_columns) {
      t.add_row({spec.name(), std::to_string(orig.num_dffs()),
                 pct(r0.fault_coverage), pct(r0.fault_efficiency),
                 kev(r0.evals), strprintf("%.1f", r0.wall_seconds), ""});
      t.add_row({spec.retimed_name(), std::to_string(re.num_dffs()),
                 pct(r1.fault_coverage), pct(r1.fault_efficiency),
                 kev(r1.evals), strprintf("%.1f", r1.wall_seconds),
                 strprintf("%.1f", ratio)});
    } else {
      t.add_row({spec.name(), pct(r0.fault_coverage),
                 pct(r0.fault_efficiency), pct(r1.fault_coverage),
                 pct(r1.fault_efficiency), strprintf("%.1f", ratio)});
    }
  }
  return t;
}

std::vector<PairSpec> pairs_by_names(const std::vector<std::string>& names) {
  std::vector<PairSpec> out;
  for (const auto& name : names)
    for (const auto& spec : table2_specs())
      if (spec.name() == name) out.push_back(spec);
  return out;
}

}  // namespace

Table run_table2_hitec(Suite& suite, const ExperimentOptions& opts) {
  return run_engine_table(suite, opts, EngineKind::kHitec, table2_specs(),
                          /*absolute_columns=*/true);
}

Table run_table3_attest(Suite& suite, const ExperimentOptions& opts) {
  return run_engine_table(
      suite, opts, EngineKind::kForward,
      pairs_by_names({"dk16.ji.sd", "pma.jo.sd", "s510.jc.sd", "s510.ji.sr",
                      "s510.jo.sr"}),
      /*absolute_columns=*/false);
}

Table run_table4_sest(Suite& suite, const ExperimentOptions& opts) {
  return run_engine_table(
      suite, opts, EngineKind::kLearning,
      pairs_by_names({"dk16.ji.sd", "pma.jo.sd", "s510.jc.sd", "s510.ji.sd",
                      "s510.jo.sr"}),
      /*absolute_columns=*/false);
}

Table run_table5_structure(Suite& suite, const ExperimentOptions& opts) {
  (void)opts;
  Table t({"circuit", "max seq depth (orig)", "max cycle len (orig)",
           "#cycles (orig)", "max seq depth (re)", "max cycle len (re)",
           "#cycles (re)"});
  auto fmt = [](int v, bool saturated) {
    if (!saturated) return std::to_string(v);
    // A capped search that found nothing yet has no information to report.
    return v == 0 ? std::string("n/a(cap)") : (">=" + std::to_string(v));
  };
  for (const auto& spec : table2_specs()) {
    const Netlist orig = suite.circuit(spec.name());
    const Netlist re = suite.circuit(spec.retimed_name());
    const auto d0 = max_sequential_depth(orig);
    const auto d1 = max_sequential_depth(re);
    const auto c0 = count_cycles(orig);
    const auto c1 = count_cycles(re);
    t.add_row({spec.name(), fmt(d0.max_depth, d0.saturated),
               fmt(c0.max_cycle_length, c0.saturated),
               fmt(c0.num_cycles, c0.saturated),
               fmt(d1.max_depth, d1.saturated),
               fmt(c1.max_cycle_length, c1.saturated),
               fmt(c1.num_cycles, c1.saturated)});
  }
  return t;
}

Table run_table6_density(Suite& suite, const ExperimentOptions& opts) {
  Table t({"circuit", "#states trav", "#valid states", "%valid trav",
           "total #states", "density of encoding"});
  for (const auto& spec : table2_specs()) {
    for (const bool retimed : {false, true}) {
      const std::string name =
          retimed ? spec.retimed_name() : spec.name();
      const Netlist nl = suite.circuit(name);
      const auto run = run_atpg_threaded(
          nl, opts, scaled_run_options(opts, EngineKind::kHitec));
      const auto reach = compute_reachable(nl);
      const std::size_t tv = traversed_valid(run.states_traversed, reach);
      const double pct_trav =
          reach.num_valid > 0
              ? 100.0 * static_cast<double>(tv) / reach.num_valid
              : 0.0;
      t.add_row({name, std::to_string(run.states_traversed.size()),
                 strprintf("%.0f", reach.num_valid),
                 strprintf("%.0f", pct_trav),
                 format_count(reach.total_states),
                 format_density(reach.density)});
    }
  }
  return t;
}

Table run_table7_sensitivity(Suite& suite, const ExperimentOptions& opts) {
  (void)opts;
  Table t({"circuit", "delay (ns)", "#DFF", "#valid states", "total #states",
           "density of encoding"});
  std::vector<std::string> names{"s510.jo.sr"};
  for (const auto& [suffix, dffs] : table7_ladder())
    names.push_back("s510.jo.sr" + suffix);
  for (const auto& name : names) {
    const Netlist nl = suite.circuit(name);
    const auto reach = compute_reachable(nl);
    t.add_row({name, strprintf("%.2f", critical_path_delay(nl)),
               std::to_string(nl.num_dffs()),
               strprintf("%.0f", reach.num_valid),
               format_count(reach.total_states),
               format_density(reach.density)});
  }
  return t;
}

Table run_table8_replay(Suite& suite, const ExperimentOptions& opts) {
  Table t({"circuit", "%FC", "%FE", "#states trav", "#valid states",
           "#states trav by orig test set", "%FC orig test set"});
  const std::vector<std::string> rows{"s510.jc.sr", "s510.jo.sr", "s832.jc.sr",
                                      "scf.ji.sd"};
  for (const auto& base : rows) {
    PairSpec spec;
    for (const auto& s : table2_specs())
      if (s.name() == base) spec = s;
    const Netlist orig = suite.circuit(spec.name());
    const Netlist re = suite.circuit(spec.retimed_name());
    const auto run_opts = scaled_run_options(opts, EngineKind::kHitec);
    const AtpgRunResult r_orig = run_atpg_threaded(orig, opts, run_opts);
    const AtpgRunResult r_re = run_atpg_threaded(re, opts, run_opts);
    const auto reach = compute_reachable(re);

    // Replay the original circuit's test set on the retimed circuit
    // (identical PI ordering by construction of the rebuild).
    const auto collapsed = collapse_faults(re);
    std::vector<Fault> faults;
    for (const auto& cf : collapsed) faults.push_back(cf.representative);
    const auto replay = run_fault_simulation(re, faults, r_orig.tests,
                                             opts.fsim);
    std::size_t det_w = 0, tot_w = 0;
    for (std::size_t i = 0; i < collapsed.size(); ++i) {
      tot_w += static_cast<std::size_t>(collapsed[i].class_size);
      if (replay.detected_at[i] >= 0 || replay.potential_at[i] >= 0)
        det_w += static_cast<std::size_t>(collapsed[i].class_size);
    }
    const double replay_fc =
        100.0 * static_cast<double>(det_w) /
        static_cast<double>(std::max<std::size_t>(1, tot_w));

    t.add_row({spec.retimed_name(), pct(r_re.fault_coverage),
               pct(r_re.fault_efficiency),
               std::to_string(r_re.states_traversed.size()),
               strprintf("%.0f", reach.num_valid),
               std::to_string(replay.good_states.size()),
               pct(replay_fc)});
  }
  return t;
}

Table run_fig3_fe_vs_cpu(Suite& suite, const ExperimentOptions& opts) {
  Table t({"circuit", "kEv (cumulative)", "%FE attained"});
  std::vector<std::string> names{"s510.jo.sr"};
  for (const auto& [suffix, dffs] : table7_ladder())
    names.push_back("s510.jo.sr" + suffix);
  for (const auto& name : names) {
    const Netlist nl = suite.circuit(name);
    const auto run = run_atpg_threaded(
        nl, opts, scaled_run_options(opts, EngineKind::kHitec));
    // Sample ~12 points along the trace plus the endpoint.
    const auto& trace = run.fe_trace;
    const std::size_t stride =
        std::max<std::size_t>(1, trace.size() / 12);
    for (std::size_t i = 0; i < trace.size(); i += stride)
      t.add_row({name, kev(trace[i].first), pct(trace[i].second)});
    if (!trace.empty())
      t.add_row({name, kev(trace.back().first), pct(trace.back().second)});
    t.add_row({name + " (final)", kev(run.evals),
               pct(run.fault_efficiency)});
  }
  return t;
}

Table run_table9_cdcl(Suite& suite, const ExperimentOptions& opts) {
  // The Table-4 circuit pairs, each row one circuit: the cdcl engine's
  // coverage/work/solver counters next to the hitec baseline's work and
  // the attribution oracle's invalid-state effort fraction for both
  // engines. The "inv%" gap on the retimed rows is the question the
  // engine exists to answer: does conflict learning shrink the share of
  // effort burned justifying into unreachable states?
  Table t({"circuit", "%FC", "%FE", "kEv cdcl", "conflicts", "cubes",
           "inv% cdcl", "kEv hitec", "inv% hitec"});
  for (const auto& spec :
       pairs_by_names({"dk16.ji.sd", "pma.jo.sd", "s510.jc.sd"})) {
    for (const auto& name : {spec.name(), spec.retimed_name()}) {
      const Netlist nl = suite.circuit(name);
      const auto rc = run_atpg_threaded(
          nl, opts, scaled_run_options(opts, EngineKind::kCdcl));
      const auto rh = run_atpg_threaded(
          nl, opts, scaled_run_options(opts, EngineKind::kHitec));
      t.add_row({name, pct(rc.fault_coverage), pct(rc.fault_efficiency),
                 kev(rc.evals), std::to_string(rc.conflicts),
                 std::to_string(rc.cube_exports),
                 pct(100.0 * rc.effort_invalid_frac), kev(rh.evals),
                 pct(100.0 * rh.effort_invalid_frac)});
    }
  }
  return t;
}

Table run_ablation_learning(Suite& suite, const ExperimentOptions& opts) {
  Table t({"circuit", "%FE hitec", "kEv hitec", "%FE learning",
           "kEv learning", "speedup"});
  for (const auto& name :
       {"dk16.ji.sd.re", "s820.jo.sr.re", "s832.jo.sr.re"}) {
    const Netlist nl = suite.circuit(name);
    const auto r0 = run_atpg_threaded(
        nl, opts, scaled_run_options(opts, EngineKind::kHitec));
    const auto r1 = run_atpg_threaded(
        nl, opts, scaled_run_options(opts, EngineKind::kLearning));
    t.add_row({name, pct(r0.fault_efficiency), kev(r0.evals),
               pct(r1.fault_efficiency), kev(r1.evals),
               strprintf("%.2f", static_cast<double>(r0.evals) /
                                     static_cast<double>(std::max<
                                         std::uint64_t>(1, r1.evals)))});
  }
  return t;
}

Table run_ablation_cdcl_sharing(Suite& suite, const ExperimentOptions& opts) {
  // Retimed twins, cdcl engine, identical flags except the shared cache:
  // sharing must never raise total conflicts, and on justification-heavy
  // twins it should strictly lower them (the tier2 bench gate asserts the
  // strict version for dk16).
  Table t({"circuit", "conflicts shared", "conflicts solo", "cubes",
           "kEv shared", "kEv solo"});
  for (const auto& name :
       {"dk16.ji.sd.re", "s820.jo.sr.re", "s832.jo.sr.re"}) {
    const Netlist nl = suite.circuit(name);
    auto run_opts = scaled_run_options(opts, EngineKind::kCdcl);
    const auto shared = run_atpg_threaded(nl, opts, run_opts);
    run_opts.engine.share_learning = false;
    const auto solo = run_atpg_threaded(nl, opts, run_opts);
    t.add_row({name, std::to_string(shared.conflicts),
               std::to_string(solo.conflicts),
               std::to_string(shared.cube_exports), kev(shared.evals),
               kev(solo.evals)});
  }
  return t;
}

Table run_ablation_budget(Suite& suite, const ExperimentOptions& opts) {
  Table t({"circuit", "budget scale", "%FC", "%FE", "kEv"});
  const Netlist nl = suite.circuit("s820.jo.sd.re");
  for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    ExperimentOptions scaled = opts;
    scaled.budget_scale = opts.budget_scale * scale;
    const auto r = run_atpg_threaded(
        nl, scaled, scaled_run_options(scaled, EngineKind::kHitec));
    t.add_row({nl.name(), strprintf("%.2f", scale), pct(r.fault_coverage),
               pct(r.fault_efficiency), kev(r.evals)});
  }
  return t;
}

Table run_ablation_encoding(const ExperimentOptions& opts) {
  // Density of encoding varied directly (no retiming): the same machine
  // synthesized with minimum-bit encoders vs one-hot.
  Table t({"circuit", "#DFF", "#valid", "total", "density", "%FC", "%FE",
           "kEv"});
  FsmGenSpec gen;
  for (const auto& s : mcnc_specs())
    if (s.name == "s820") gen = s;
  gen = scaled_spec(gen, 0.75);
  gen.seed ^= opts.seed * 0x9e3779b97f4a7c15ULL;
  const Fsm fsm = generate_control_fsm(gen);
  for (const EncodeAlgo algo :
       {EncodeAlgo::kNatural, EncodeAlgo::kInputDominant,
        EncodeAlgo::kOutputDominant, EncodeAlgo::kCombined,
        EncodeAlgo::kOneHot}) {
    SynthOptions so;
    so.encode = algo;
    so.seed = opts.seed;
    const SynthResult res = synthesize(fsm, so);
    const auto reach = compute_reachable(res.netlist);
    const auto run = run_atpg_threaded(
        res.netlist, opts, scaled_run_options(opts, EngineKind::kHitec));
    t.add_row({res.name, std::to_string(res.netlist.num_dffs()),
               strprintf("%.0f", reach.num_valid),
               format_count(reach.total_states),
               format_density(reach.density), pct(run.fault_coverage),
               pct(run.fault_efficiency), kev(run.evals)});
  }
  return t;
}

BenchConfig parse_bench_flags(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--budget=")) {
      cfg.experiment.budget_scale = std::atof(v);
    } else if (const char* v = value_of("--seed=")) {
      cfg.experiment.seed = static_cast<std::uint64_t>(std::atoll(v));
      cfg.suite.seed = cfg.experiment.seed;
    } else if (const char* v = value_of("--scale=")) {
      cfg.suite.fsm_scale = std::atof(v);
    } else if (const char* v = value_of("--cache=")) {
      cfg.suite.cache_dir = v;
    } else if (const char* v = value_of("--threads=")) {
      cfg.experiment.num_threads =
          static_cast<unsigned>(std::atoi(v));
    } else if (const char* v = value_of("--deadline-ms=")) {
      cfg.experiment.deadline_ms =
          static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char* v = value_of("--width=")) {
      SimdTier tier;
      if (!simd_tier_from_width(static_cast<unsigned>(std::atoi(v)), &tier)) {
        std::fprintf(stderr, "error: --width must be 64, 128, 256 or 512\n");
        std::exit(2);
      }
      cfg.experiment.fsim.simd = tier;
    } else if (arg == "--force-scalar") {
      cfg.experiment.fsim.simd = SimdTier::kScalar;
    } else if (cfg.telemetry.parse(arg.c_str())) {
      // --metrics-json= / --trace-json= handled by the shared helper.
    } else if (arg == "--no-sidecar") {
      cfg.write_sidecar = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--budget=F] [--seed=N] [--scale=F] "
                   "[--cache=DIR] [--threads=N] [--deadline-ms=N]\n"
                   "          [--metrics-json=FILE] [--trace-json=FILE] "
                   "[--width=64|128|256|512] [--force-scalar] "
                   "[--no-sidecar]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return cfg;
}

}  // namespace satpg
