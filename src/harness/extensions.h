// Extension experiments beyond the paper's tables: the exact-oracle SRF
// census (does retiming inject redundancy? — Theorem 1 says no, the
// product-machine analysis verifies it) and the scan-DFT payoff study the
// paper's conclusion motivates.
#pragma once

#include "base/table.h"
#include "harness/experiments.h"

namespace satpg {

/// Exact detectability census over every collapsed fault of an
/// original/retimed pair (built at a reduced FSM scale so the product-
/// machine BDDs stay comfortable). Columns show that the retimed circuit
/// gains essentially no redundant faults — the blowup is search cost, not
/// redundancy, which is the paper's §4.1 argument made machine-checkable.
Table run_srf_census(const ExperimentOptions& opts);

/// Scan DFT ablation: sequential ATPG on a retimed circuit vs the same
/// circuit with full scan and with cycle-breaking partial scan.
Table run_ablation_scan(Suite& suite, const ExperimentOptions& opts);

/// Test-set compaction study over a few suite circuits.
Table run_compaction_study(Suite& suite, const ExperimentOptions& opts);

}  // namespace satpg
