// Cross-run analytics over flight-recorder event logs and archived
// reports: the read side of the observability stack (`satpg inspect`).
//
// inspect_source accepts either artifact the run side writes —
//   * a satpg.events.v1 NDJSON flight-recorder log (--events-json), or
//   * a satpg.atpg_run.v1-v6 report (--metrics-json / archive entry)
// — detects which it got from the schema, and renders:
//   * default: run identity, the top-k hardest-faults table (ranked by
//     evals, then invalid fraction, then name) and the cube-sharing
//     provenance summary (exporters -> beneficiaries with hit counts);
//   * --fault=ID (name or collapsed index): that fault's full search
//     timeline (event log) or its per-fault record + cube sources
//     (report);
//   * --memory: the v6 per-subsystem byte-accounting block, the budget
//     verdict, and the hungriest faults ranked by per-attempt peak bytes.
// inspect_source also accepts a satpg.profile.v1 sidecar when --profile
// is set, rendering the ranked where-do-the-cycles-go phase table.
// inspect_diff compares two reports as trajectories: summary deltas,
// fault-efficiency milestones from the fe_trace, and the per-fault
// divergence table.
// inspect_trend walks a sequence of archived documents (reports and
// profile sidecars, in archive append order) and renders one row per
// report — coverage, evals, peak bytes, plus evals/s and cycles/eval
// joined from the latest profile sidecar with the same configuration.
//
// Everything here is a pure function of the input texts — identical
// inputs give byte-identical output in both txt and json formats, so
// inspect output can itself be diffed across machines and thread counts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace satpg {

struct InspectOptions {
  /// Fault to show a timeline for: a fault name or an all-digits
  /// collapsed-fault index. Empty = run overview.
  std::string fault;
  /// Rows in the hardest-faults table.
  std::size_t top = 10;
  /// Memory view (--memory): the report's per-subsystem byte accounting
  /// plus the hungriest faults by peak_bytes. Requires a v6+ report.
  bool memory = false;
  /// Profile view (--profile): the ranked per-phase cost table from a
  /// satpg.profile.v1 sidecar (--profile-json output).
  bool profile = false;
  /// Machine-readable output (--format=json) instead of aligned text.
  bool json = false;
};

/// One archived document handed to inspect_trend: the archive hash and
/// the stored text (report or profile sidecar), in append order.
struct TrendEntry {
  std::string hash;
  std::string text;
};

/// Inspect one artifact (event log or report text). Returns false with a
/// one-line *error (when non-null) on malformed input or an unknown
/// fault; writes nothing to `os` in that case.
bool inspect_source(std::ostream& os, const std::string& text,
                    const InspectOptions& opts, std::string* error = nullptr);

/// Trajectory diff of two atpg_run reports (a = baseline). Returns false
/// with *error on malformed input or non-report artifacts.
bool inspect_diff(std::ostream& os, const std::string& a_text,
                  const std::string& b_text, const InspectOptions& opts,
                  std::string* error = nullptr);

/// Cross-run trend table over archived documents in append order: one
/// row per atpg_run report; profile sidecars in the sequence contribute
/// evals/s and cycles/eval to the latest same-configuration report row
/// ("-" when no profile matches). Returns false with *error when an
/// entry is malformed or no report rows remain.
bool inspect_trend(std::ostream& os, const std::vector<TrendEntry>& entries,
                   const InspectOptions& opts, std::string* error = nullptr);

}  // namespace satpg
