#include "harness/report.h"

#include <array>
#include <fstream>
#include <map>
#include <ostream>

#include "base/json.h"
#include "base/memstats.h"
#include "base/metrics.h"
#include "base/strutil.h"
#include "fault/fault.h"
#include "harness/build_info.h"

namespace satpg {

namespace {

const char* status_name(FaultStatus s) {
  switch (s) {
    case FaultStatus::kDetected:
      return "detected";
    case FaultStatus::kRedundant:
      return "redundant";
    case FaultStatus::kAborted:
      return "aborted";
  }
  return "?";
}

std::string num(double v) { return strprintf("%.17g", v); }

std::string attr_array(const std::array<std::uint64_t, 3>& a) {
  return strprintf("[%llu, %llu, %llu]",
                   static_cast<unsigned long long>(a[0]),
                   static_cast<unsigned long long>(a[1]),
                   static_cast<unsigned long long>(a[2]));
}

}  // namespace

void write_atpg_report_json(std::ostream& os, const Netlist& nl,
                            const ParallelAtpgOptions& opts,
                            const ParallelAtpgResult& res) {
  const AtpgRunResult& run = res.run;
  os << "{\n";
  os << "  \"schema\": \"satpg.atpg_run.v6\",\n";

  os << "  \"circuit\": {\"name\": \"" << json_escape(nl.name())
     << "\", \"inputs\": " << nl.num_inputs()
     << ", \"outputs\": " << nl.num_outputs()
     << ", \"gates\": " << nl.num_gates()
     << ", \"dffs\": " << nl.num_dffs() << "},\n";

  const EngineOptions& eng = opts.run.engine;
  os << "  \"engine\": {\"kind\": \"" << engine_kind_name(eng.kind)
     << "\", \"eval_limit\": " << eng.eval_limit
     << ", \"backtrack_limit\": " << eng.backtrack_limit
     << ", \"max_forward_frames\": " << eng.max_forward_frames
     << ", \"max_backward_frames\": " << eng.max_backward_frames
     << ", \"share_learning\": " << (eng.share_learning ? "true" : "false")
     << ", \"seed\": " << opts.run.seed << "},\n";

  // v6: build provenance. Fixed per binary (the dispatched SIMD tier per
  // binary + machine), so byte-identity across --threads still holds;
  // satpg diff flags runs whose blocks disagree.
  os << "  \"build_info\": ";
  write_build_info_json(os, build_info(), 16);
  os << ",\n";

  // v2: how justification cubes were classified (DESIGN.md §6). num_valid
  // and density are -1 when the BDD analysis did not complete; everything
  // here is deterministic, so the block never breaks byte-identity.
  os << "  \"attribution\": {\"oracle\": \"" << oracle_mode_name(run.oracle.mode)
     << "\", \"num_valid\": " << num(run.oracle.num_valid)
     << ", \"density\": " << num(run.oracle.density)
     << ",\n                  \"bucket_order\": [\"valid\", \"invalid\","
        " \"unknown\"]},\n";

  // v3: watchdog verdicts. The eval threshold is a deterministic run
  // parameter (DESIGN.md §7), so this block — always present, empty when
  // the watchdog is off — is as thread-count invariant as the summary.
  os << "  \"watchdog\": {\"stuck_evals\": " << opts.watchdog.stuck_evals
     << ", \"defer\": " << (opts.watchdog.defer ? "true" : "false")
     << ", \"requeued\": " << res.deferred_requeued
     << ",\n               \"stuck_faults\": [";
  {
    const auto collapsed_wd = collapse_faults(nl);
    for (std::size_t i = 0; i < res.stuck_faults.size(); ++i) {
      const auto& sf = res.stuck_faults[i];
      os << (i == 0 ? "\n    " : ",\n    ") << "{\"fault\": \""
         << json_escape(
                fault_name(nl, collapsed_wd[sf.fault_index].representative))
         << "\", \"index\": " << sf.fault_index
         << ", \"evals\": " << sf.evals
         << ", \"deferred\": " << (sf.deferred ? "true" : "false")
         << ", \"status\": \"" << status_name(res.status[sf.fault_index])
         << "\"}";
    }
  }
  // v6: the memory-budget verdict rides the watchdog block — both are
  // deterministic graceful-degradation gates over the same park/requeue
  // machinery. budget is bytes (0 = unenforced).
  os << "],\n               \"memory\": {\"budget\": " << res.mem_budget_bytes
     << ", \"tripped\": " << res.mem_tripped
     << ", \"requeued\": " << res.mem_requeued << ", \"verdict\": \""
     << (res.mem_budget_bytes == 0 ? "off"
                                   : (res.mem_tripped == 0 ? "clean"
                                                           : "degraded"))
     << "\"}},\n";

  os << "  \"summary\": {"
     << "\"total_faults\": " << run.total_faults
     << ", \"detected\": " << run.detected
     << ", \"redundant\": " << run.redundant
     << ", \"aborted\": " << run.aborted
     << ", \"fault_coverage\": " << num(run.fault_coverage)
     << ", \"fault_efficiency\": " << num(run.fault_efficiency)
     << ",\n              \"evals\": " << run.evals
     << ", \"backtracks\": " << run.backtracks
     << ", \"implications\": " << run.implications
     << ", \"window_growths\": " << run.window_growths
     << ",\n              \"justify_calls\": " << run.justify_calls
     << ", \"justify_failures\": " << run.justify_failures
     << ", \"learn_hits\": " << run.learn_hits
     << ", \"learn_misses\": " << run.learn_misses
     << ", \"learn_inserts\": " << run.learn_inserts
     << ",\n              \"conflicts\": " << run.conflicts
     << ", \"propagations\": " << run.propagations
     << ", \"restarts\": " << run.restarts
     << ", \"learned_clauses\": " << run.learned_clauses
     << ", \"cube_exports\": " << run.cube_exports
     << ",\n              \"verify_failures\": " << run.verify_failures
     << ", \"tests\": " << run.tests.size()
     << ", \"states_traversed\": " << run.states_traversed.size()
     << ",\n              \"attr_calls\": " << attr_array(run.attribution.justify_calls)
     << ", \"attr_failures\": " << attr_array(run.attribution.justify_failures)
     << ",\n              \"attr_evals\": " << attr_array(run.attribution.justify_evals)
     << ", \"attr_backtracks\": " << attr_array(run.attribution.justify_backtracks)
     << ",\n              \"effort_invalid_frac\": "
     << num(run.effort_invalid_frac) << "},\n";

  os << "  \"fe_trace\": [";
  for (std::size_t i = 0; i < run.fe_trace.size(); ++i)
    os << (i == 0 ? "" : ", ") << '[' << run.fe_trace[i].first << ", "
       << num(run.fe_trace[i].second) << ']';
  os << "],\n";

  // One record per collapsed fault. Faults the random phase settled (or
  // budget/deadline skipped) have attempted=false and all-zero stats.
  const auto collapsed = collapse_faults(nl);
  os << "  \"per_fault\": [\n";
  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    const FaultSearchStats& s = res.fault_stats[i];
    os << "    {\"fault\": \""
       << json_escape(fault_name(nl, collapsed[i].representative))
       << "\", \"class_size\": " << collapsed[i].class_size
       << ", \"status\": \"" << status_name(res.status[i])
       << "\", \"attempted\": " << (res.attempted[i] ? "true" : "false")
       << ", \"detected_by\": " << res.detected_by[i]
       << ",\n     \"evals\": " << s.evals
       << ", \"backtracks\": " << s.backtracks
       << ", \"implications\": " << s.implications
       << ", \"window_growths\": " << s.window_growths
       << ",\n     \"justify_calls\": " << s.justify_calls
       << ", \"justify_failures\": " << s.justify_failures
       << ", \"justify_depth\": " << s.max_justify_depth
       << ", \"learn_hits\": " << s.learn_hits
       << ", \"learn_misses\": " << s.learn_misses
       << ", \"learn_inserts\": " << s.learn_inserts
       << ",\n     \"conflicts\": " << s.conflicts
       << ", \"propagations\": " << s.propagations
       << ", \"restarts\": " << s.restarts
       << ", \"learned_clauses\": " << s.learned_clauses
       << ", \"cube_blocks\": " << s.cube_blocks
       << ", \"cube_exports\": " << s.cube_exports
       << ",\n     \"verify_rejects\": " << s.verify_rejects
       << ", \"budget_exhausted\": "
       << (s.budget_exhausted ? "true" : "false")
       << ", \"peak_bytes\": " << s.peak_bytes
       << ",\n     \"attr_calls\": " << attr_array(s.attribution.justify_calls)
       << ", \"attr_failures\": " << attr_array(s.attribution.justify_failures)
       << ",\n     \"attr_evals\": " << attr_array(s.attribution.justify_evals)
       << ", \"attr_backtracks\": "
       << attr_array(s.attribution.justify_backtracks)
       << ",\n     \"effort_invalid_frac\": "
       << num(s.attribution.invalid_frac(s.evals))
       << ",\n     \"cube_sources\": [";
    const auto& sources = res.cube_sources[i];
    for (std::size_t j = 0; j < sources.size(); ++j)
      os << (j == 0 ? "" : ", ") << "{\"from\": \""
         << json_escape(sources[j].exporter)
         << "\", \"epoch\": " << sources[j].epoch
         << ", \"hits\": " << sources[j].hits << '}';
    os << "]}" << (i + 1 < collapsed.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  // v5: cube-sharing provenance rollup. exports sums the per-fault
  // cube_exports counters and must equal the summary cube_exports
  // (tools/bench_gate checks the equality; defer-requeue runs are exempt —
  // a parked fault's first attempt counts in the summary but not in its
  // final per-fault record). import_hits is the total of every per-fault
  // cube_sources hit count.
  // The exporters array unions faults that exported cubes with names that
  // appear as a source anywhere, sorted by name — all inputs are
  // deterministic, so the block is too. The empty name collects hits whose
  // exporter is unknown (legacy shares without provenance).
  {
    struct Exporter {
      std::uint64_t cubes = 0;
      std::uint64_t beneficiaries = 0;
      std::uint64_t hits = 0;
    };
    std::map<std::string, Exporter> exporters;
    std::uint64_t import_hits = 0;
    std::uint64_t exports = 0;  // per-fault sum; must equal run.cube_exports
    for (std::size_t i = 0; i < collapsed.size(); ++i) {
      exports += res.fault_stats[i].cube_exports;
      if (res.fault_stats[i].cube_exports > 0)
        exporters[fault_name(nl, collapsed[i].representative)].cubes +=
            res.fault_stats[i].cube_exports;
      for (const CubeSource& src : res.cube_sources[i]) {
        Exporter& e = exporters[src.exporter];
        ++e.beneficiaries;
        e.hits += src.hits;
        import_hits += src.hits;
      }
    }
    os << "  \"cube_provenance\": {\"exports\": " << exports
       << ", \"import_hits\": " << import_hits << ", \"exporters\": [";
    bool first = true;
    for (const auto& [name, e] : exporters) {
      os << (first ? "\n    " : ",\n    ") << "{\"fault\": \""
         << json_escape(name) << "\", \"cubes\": " << e.cubes
         << ", \"beneficiaries\": " << e.beneficiaries
         << ", \"hits\": " << e.hits << '}';
      first = false;
    }
    os << "]},\n";
  }

  // v6: folded byte accounting (base/memstats) — attempt tallies merged in
  // unit/fault order plus the shared-subsystem registry snapshot. Logical
  // bytes only; total.peak is the sum-of-subsystem-peaks upper bound.
  // All-zero (but present, fixed shape) when memstats were never armed.
  os << "  \"memory\": ";
  res.mem.write_json(os, 2);
  os << ",\n";

  os << "  \"metrics\": ";
  MetricsRegistry::global().write_json(os, 2);
  os << "\n}\n";
}

bool write_atpg_report_json(const std::string& path, const Netlist& nl,
                            const ParallelAtpgOptions& opts,
                            const ParallelAtpgResult& res) {
  std::ofstream os(path);
  if (!os) return false;
  write_atpg_report_json(os, nl, opts, res);
  return os.good();
}

void write_events_json(std::ostream& os, const Netlist& nl,
                       const ParallelAtpgOptions& opts,
                       const ParallelAtpgResult& res) {
  const auto collapsed = collapse_faults(nl);
  std::size_t attempted = 0;
  for (std::size_t i = 0; i < collapsed.size(); ++i)
    if (res.attempted[i]) ++attempted;

  os << "{\"schema\": \"satpg.events.v1\", \"circuit\": \""
     << json_escape(nl.name()) << "\", \"engine\": \""
     << engine_kind_name(opts.run.engine.kind)
     << "\", \"seed\": " << opts.run.seed
     << ", \"faults\": " << collapsed.size()
     << ", \"attempted\": " << attempted << "}\n";

  std::string line;
  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    if (!res.attempted[i]) continue;
    const FaultSearchStats& s = res.fault_stats[i];
    os << "{\"fault\": \""
       << json_escape(fault_name(nl, collapsed[i].representative))
       << "\", \"index\": " << i << ", \"status\": \""
       << status_name(res.status[i]) << "\", \"evals\": " << s.evals
       << ", \"backtracks\": " << s.backtracks << ", \"invalid_frac\": "
       << num(s.attribution.invalid_frac(s.evals))
       << ", \"events\": " << res.fault_events[i].size() << "}\n";
    for (const SearchEvent& e : res.fault_events[i]) {
      line.clear();
      append_event_json(&line, e);
      os << line << '\n';
    }
  }
}

bool write_events_json(const std::string& path, const Netlist& nl,
                       const ParallelAtpgOptions& opts,
                       const ParallelAtpgResult& res) {
  std::ofstream os(path);
  if (!os) return false;
  write_events_json(os, nl, opts, res);
  return os.good();
}

}  // namespace satpg
