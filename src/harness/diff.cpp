#include "harness/diff.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "base/json.h"
#include "base/strutil.h"
#include "base/table.h"

namespace satpg {

namespace {

double ratio_of(std::uint64_t b, std::uint64_t a) {
  if (a == 0) return b == 0 ? 1.0 : 0.0;
  return static_cast<double>(b) / static_cast<double>(a);
}

std::string fmt_frac(double v) { return strprintf("%.4f", v); }
std::string fmt_pct(double v) { return strprintf("%.2f", v); }
std::string fmt_ratio(double v) { return strprintf("%.3fx", v); }
std::string fmt_delta_pts(double v) { return strprintf("%+.2f", v); }

}  // namespace

bool parse_run_report(const std::string& json_text, RunReport* out,
                      std::string* error) {
  JsonValue root;
  if (!json_parse(json_text, &root, error)) return false;
  if (!root.is_object()) {
    if (error) *error = "report is not a JSON object";
    return false;
  }
  RunReport r;
  r.schema = root.str_or("schema", "");
  if (r.schema.rfind("satpg.atpg_run.", 0) != 0) {
    if (error) *error = "not an atpg_run report (schema \"" + r.schema + "\")";
    return false;
  }
  if (const JsonValue* c = root.find("circuit"))
    r.circuit = c->str_or("name", "?");
  if (const JsonValue* e = root.find("engine")) {
    r.engine = e->str_or("kind", "?");
    r.seed = e->uint_or("seed", 0);
  }
  if (const JsonValue* a = root.find("attribution")) {
    r.oracle_mode = a->str_or("oracle", "");
    r.density = a->num_or("density", -1.0);
  }
  if (const JsonValue* bi = root.find("build_info"))
    r.build_line = strprintf(
        "%s %s %s san=%s simd=%s/%s", bi->str_or("compiler", "?").c_str(),
        bi->str_or("compiler_version", "?").c_str(),
        bi->str_or("build_type", "?").c_str(),
        bi->str_or("sanitizer", "?").c_str(),
        bi->str_or("simd_compiled", "?").c_str(),
        bi->str_or("simd_dispatched", "?").c_str());
  if (const JsonValue* mem = root.find("memory"))
    if (const JsonValue* tot = mem->find("total")) {
      r.mem_peak_bytes = tot->uint_or("peak", 0);
      r.mem_allocated_bytes = tot->uint_or("allocated", 0);
    }
  const JsonValue* s = root.find("summary");
  if (s == nullptr || !s->is_object()) {
    if (error) *error = "report lacks a summary object";
    return false;
  }
  r.fault_coverage = s->num_or("fault_coverage", 0.0);
  r.fault_efficiency = s->num_or("fault_efficiency", 0.0);
  r.evals = s->uint_or("evals", 0);
  r.backtracks = s->uint_or("backtracks", 0);
  r.justify_calls = s->uint_or("justify_calls", 0);
  r.justify_failures = s->uint_or("justify_failures", 0);
  r.effort_invalid_frac = s->num_or("effort_invalid_frac", 0.0);

  if (const JsonValue* pf = root.find("per_fault"); pf && pf->is_array()) {
    r.per_fault.reserve(pf->array().size());
    for (const JsonValue& f : pf->array()) {
      if (!f.is_object()) continue;
      RunReport::PerFault rec;
      rec.name = f.str_or("fault", "?");
      rec.status = f.str_or("status", "?");
      rec.attempted = f.bool_or("attempted", false);
      rec.evals = f.uint_or("evals", 0);
      rec.backtracks = f.uint_or("backtracks", 0);
      rec.justify_failures = f.uint_or("justify_failures", 0);
      rec.effort_invalid_frac = f.num_or("effort_invalid_frac", 0.0);
      r.per_fault.push_back(std::move(rec));
    }
  }
  *out = std::move(r);
  return true;
}

RunDiff diff_runs(const RunReport& a, const RunReport& b,
                  const DiffOptions& opts) {
  RunDiff d;
  d.coverage_delta = b.fault_coverage - a.fault_coverage;
  d.efficiency_delta = b.fault_efficiency - a.fault_efficiency;
  d.evals_ratio = ratio_of(b.evals, a.evals);
  d.backtracks_ratio = ratio_of(b.backtracks, a.backtracks);
  d.invalid_frac_delta = b.effort_invalid_frac - a.effort_invalid_frac;

  // Per-fault join on fault name. std::map keeps the iteration (and with
  // it every output row) in a fixed order independent of input order.
  std::map<std::string, const RunReport::PerFault*> by_name_a;
  for (const auto& f : a.per_fault) by_name_a.emplace(f.name, &f);

  std::vector<RunDiff::FaultDelta> grew;
  for (const auto& fb : b.per_fault) {
    const auto it = by_name_a.find(fb.name);
    if (it == by_name_a.end()) continue;
    const RunReport::PerFault& fa = *it->second;
    RunDiff::FaultDelta fd;
    fd.name = fb.name;
    fd.status_a = fa.status;
    fd.status_b = fb.status;
    fd.evals_delta = static_cast<std::int64_t>(fb.evals) -
                     static_cast<std::int64_t>(fa.evals);
    fd.invalid_frac_a = fa.effort_invalid_frac;
    fd.invalid_frac_b = fb.effort_invalid_frac;
    if (fd.evals_delta > 0) grew.push_back(fd);
    if (fa.status != fb.status) d.status_changes.push_back(fd);
  }
  std::sort(grew.begin(), grew.end(),
            [](const RunDiff::FaultDelta& x, const RunDiff::FaultDelta& y) {
              if (x.evals_delta != y.evals_delta)
                return x.evals_delta > y.evals_delta;
              return x.name < y.name;
            });
  if (grew.size() > opts.top_regressions) grew.resize(opts.top_regressions);
  d.regressions = std::move(grew);

  const std::size_t bins = std::max<std::size_t>(1, opts.scatter_bins);
  d.scatter_a.assign(bins, 0);
  d.scatter_b.assign(bins, 0);
  const auto fill = [bins](const RunReport& r, std::vector<std::uint64_t>& s,
                           std::uint64_t& attempted) {
    for (const auto& f : r.per_fault) {
      if (!f.attempted) continue;
      ++attempted;
      std::size_t bin = static_cast<std::size_t>(
          f.effort_invalid_frac * static_cast<double>(bins));
      if (bin >= bins) bin = bins - 1;  // frac == 1.0 lands in the last bin
      ++s[bin];
    }
  };
  fill(a, d.scatter_a, d.attempted_a);
  fill(b, d.scatter_b, d.attempted_b);
  return d;
}

void write_run_diff(std::ostream& os, const RunReport& a, const RunReport& b,
                    const RunDiff& d) {
  os << "=== run diff: " << a.circuit << " (" << a.engine << ") -> "
     << b.circuit << " (" << b.engine << ") ===\n";

  Table summary({"metric", "baseline", "candidate", "delta"});
  summary.add_row({"fault_coverage %", fmt_pct(a.fault_coverage),
                   fmt_pct(b.fault_coverage),
                   fmt_delta_pts(d.coverage_delta)});
  summary.add_row({"fault_efficiency %", fmt_pct(a.fault_efficiency),
                   fmt_pct(b.fault_efficiency),
                   fmt_delta_pts(d.efficiency_delta)});
  summary.add_row({"evals", strprintf("%llu",
                                      static_cast<unsigned long long>(a.evals)),
                   strprintf("%llu", static_cast<unsigned long long>(b.evals)),
                   fmt_ratio(d.evals_ratio)});
  summary.add_row(
      {"backtracks",
       strprintf("%llu", static_cast<unsigned long long>(a.backtracks)),
       strprintf("%llu", static_cast<unsigned long long>(b.backtracks)),
       fmt_ratio(d.backtracks_ratio)});
  summary.add_row({"justify_failures",
                   strprintf("%llu", static_cast<unsigned long long>(
                                         a.justify_failures)),
                   strprintf("%llu", static_cast<unsigned long long>(
                                         b.justify_failures)),
                   fmt_ratio(ratio_of(b.justify_failures,
                                      a.justify_failures))});
  summary.add_row({"effort_invalid_frac", fmt_frac(a.effort_invalid_frac),
                   fmt_frac(b.effort_invalid_frac),
                   strprintf("%+.4f", d.invalid_frac_delta)});
  summary.add_row({"oracle",
                   a.oracle_mode.empty() ? "-" : a.oracle_mode,
                   b.oracle_mode.empty() ? "-" : b.oracle_mode, "-"});
  summary.add_row({"density",
                   a.density < 0 ? "-" : format_density(a.density),
                   b.density < 0 ? "-" : format_density(b.density), "-"});
  summary.add_row({"peak mem bytes",
                   strprintf("%llu", static_cast<unsigned long long>(
                                         a.mem_peak_bytes)),
                   strprintf("%llu", static_cast<unsigned long long>(
                                         b.mem_peak_bytes)),
                   fmt_ratio(ratio_of(b.mem_peak_bytes, a.mem_peak_bytes))});
  os << summary.to_string() << "\n";

  // Build provenance: performance-level comparisons across differing
  // builds are apples to oranges — say so instead of leaving it implicit.
  if (!a.build_line.empty() || !b.build_line.empty()) {
    Table build({"build", ""});
    build.add_row({"baseline", a.build_line.empty() ? "-" : a.build_line});
    build.add_row({"candidate", b.build_line.empty() ? "-" : b.build_line});
    os << build.to_string();
    if (a.build_line != b.build_line)
      os << "NOTE: build_info differs — effort/memory deltas may reflect "
            "the build, not the change\n";
    os << "\n";
  }

  if (!d.regressions.empty()) {
    os << "top effort regressions (evals, baseline -> candidate):\n";
    Table reg({"fault", "d_evals", "status", "inv_frac a", "inv_frac b"});
    for (const auto& f : d.regressions)
      reg.add_row({f.name,
                   strprintf("%+lld", static_cast<long long>(f.evals_delta)),
                   f.status_a == f.status_b ? f.status_a
                                            : f.status_a + "->" + f.status_b,
                   fmt_frac(f.invalid_frac_a), fmt_frac(f.invalid_frac_b)});
    os << reg.to_string() << "\n";
  }

  if (!d.status_changes.empty()) {
    os << "status changes:\n";
    Table st({"fault", "baseline", "candidate"});
    for (const auto& f : d.status_changes)
      st.add_row({f.name, f.status_a, f.status_b});
    os << st.to_string() << "\n";
  }

  // The Figure-3 scatter: how much of each attempted fault's effort went
  // to provably-invalid state cubes, baseline vs candidate.
  const std::size_t bins = d.scatter_a.size();
  os << "effort_invalid_frac scatter (" << d.attempted_a
     << " vs " << d.attempted_b << " attempted faults):\n";
  Table scatter({"bin", "baseline", "candidate"});
  for (std::size_t i = 0; i < bins; ++i) {
    const double lo = static_cast<double>(i) / static_cast<double>(bins);
    const double hi =
        static_cast<double>(i + 1) / static_cast<double>(bins);
    scatter.add_row({strprintf("[%.1f,%.1f)", lo, hi),
                     strprintf("%llu", static_cast<unsigned long long>(
                                           d.scatter_a[i])),
                     strprintf("%llu", static_cast<unsigned long long>(
                                           d.scatter_b[i]))});
  }
  os << scatter.to_string();
}

GateResult evaluate_gate(const RunReport& baseline,
                         const RunReport& candidate,
                         const GateOptions& opts) {
  GateResult res;
  const double drop = baseline.fault_coverage - candidate.fault_coverage;
  if (drop > opts.max_coverage_drop) {
    res.pass = false;
    res.violations.push_back(strprintf(
        "fault coverage dropped %.2f points (%.2f -> %.2f), allowed %.2f",
        drop, baseline.fault_coverage, candidate.fault_coverage,
        opts.max_coverage_drop));
  }
  const double ratio = ratio_of(candidate.evals, baseline.evals);
  if (ratio > opts.max_effort_ratio) {
    res.pass = false;
    res.violations.push_back(strprintf(
        "effort grew %.3fx (%llu -> %llu evals), allowed %.3fx", ratio,
        static_cast<unsigned long long>(baseline.evals),
        static_cast<unsigned long long>(candidate.evals),
        opts.max_effort_ratio));
  }
  return res;
}

}  // namespace satpg
