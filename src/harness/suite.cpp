#include "harness/suite.h"

#include <filesystem>
#include <fstream>

#include "base/logging.h"
#include "base/trace.h"
#include "fsm/mcnc_suite.h"
#include "netlist/bench_io.h"
#include "retime/retime.h"
#include "synth/library.h"

namespace satpg {

std::string PairSpec::name() const {
  return fsm + encode_algo_suffix(encode) + script_suffix(script);
}

std::string PairSpec::retimed_name() const { return name() + ".re"; }

std::vector<PairSpec> table2_specs() {
  using E = EncodeAlgo;
  using S = ScriptKind;
  // fsm, encoder, script, paper #DFF (orig), paper #DFF (retimed).
  return {
      {"dk16", E::kInputDominant, S::kDelay, 5, 19},
      {"pma", E::kOutputDominant, S::kDelay, 5, 21},
      {"s510", E::kCombined, S::kDelay, 6, 20},
      {"s510", E::kCombined, S::kRugged, 6, 26},
      {"s510", E::kInputDominant, S::kDelay, 6, 11},
      {"s510", E::kInputDominant, S::kRugged, 6, 23},
      {"s510", E::kOutputDominant, S::kRugged, 6, 28},
      {"s820", E::kCombined, S::kDelay, 5, 14},
      {"s820", E::kCombined, S::kRugged, 5, 9},
      {"s820", E::kInputDominant, S::kRugged, 5, 8},
      {"s820", E::kOutputDominant, S::kDelay, 5, 22},
      {"s820", E::kOutputDominant, S::kRugged, 5, 13},
      {"s832", E::kCombined, S::kRugged, 5, 27},
      {"s832", E::kOutputDominant, S::kRugged, 5, 15},
      {"scf", E::kInputDominant, S::kDelay, 7, 20},
      {"scf", E::kOutputDominant, S::kDelay, 7, 23},
  };
}

std::vector<std::pair<std::string, int>> table7_ladder() {
  return {{".re.v1", 8}, {".re.v2", 16}, {".re.v3", 22}, {".re", 28}};
}

Suite::Suite(SuiteOptions opts) : opts_(std::move(opts)) {}

std::optional<Netlist> Suite::load_cached(const std::string& name) const {
  const std::filesystem::path path =
      std::filesystem::path(opts_.cache_dir) /
      (name + "_s" + std::to_string(opts_.seed) + "_x" +
       std::to_string(static_cast<int>(opts_.fsm_scale * 100)) + ".bench");
  std::ifstream is(path);
  if (!is) return std::nullopt;
  Netlist nl = read_bench(is, name);
  annotate_library(nl);
  return nl;
}

void Suite::store_cached(const Netlist& nl) const {
  std::error_code ec;
  std::filesystem::create_directories(opts_.cache_dir, ec);
  const std::filesystem::path path =
      std::filesystem::path(opts_.cache_dir) /
      (nl.name() + "_s" + std::to_string(opts_.seed) + "_x" +
       std::to_string(static_cast<int>(opts_.fsm_scale * 100)) + ".bench");
  std::ofstream os(path);
  if (os) write_bench(nl, os);
}

Netlist Suite::build_original(const PairSpec& spec) {
  FsmGenSpec gen;
  bool found = false;
  for (const auto& s : mcnc_specs())
    if (s.name == spec.fsm) {
      gen = s;
      found = true;
    }
  SATPG_CHECK_MSG(found, "unknown suite FSM");
  if (opts_.fsm_scale != 1.0) gen = scaled_spec(gen, opts_.fsm_scale);
  gen.seed ^= opts_.seed * 0x9e3779b97f4a7c15ULL;
  const Fsm fsm = generate_control_fsm(gen);
  SynthOptions so;
  so.encode = spec.encode;
  so.script = spec.script;
  so.seed = opts_.seed;
  TraceSpan span("synth");
  SynthResult res = synthesize(fsm, so);
  return std::move(res.netlist);
}

Netlist Suite::build(const std::string& name) {
  for (const auto& spec : table2_specs()) {
    if (name == spec.name()) return build_original(spec);
    if (name == spec.retimed_name()) {
      Netlist orig = circuit(spec.name());
      // Target the paper's flip-flop count, scaled with the FSM scale so
      // test-size suites stay proportionate.
      const std::size_t target = std::max<std::size_t>(
          orig.num_dffs() + 1,
          static_cast<std::size_t>(spec.paper_re_dffs * opts_.fsm_scale +
                                   0.5));
      TraceSpan span("retime");
      RetimeResult rt = retime_to_dff_target(orig, target, name);
      return std::move(rt.netlist);
    }
  }
  for (const auto& [suffix, dffs] : table7_ladder()) {
    const std::string full = "s510.jo.sr" + suffix;
    if (name != full || suffix == ".re") continue;  // .re handled above
    Netlist orig = circuit("s510.jo.sr");
    const std::size_t target = std::max<std::size_t>(
        orig.num_dffs() + 1,
        static_cast<std::size_t>(dffs * opts_.fsm_scale + 0.5));
    TraceSpan span("retime");
    RetimeResult rt = retime_to_dff_target(orig, target, name);
    return std::move(rt.netlist);
  }
  SATPG_CHECK_MSG(false, "Suite::circuit: unknown circuit name");
  return Netlist("");
}

Netlist Suite::circuit(const std::string& name) {
  if (auto cached = load_cached(name)) {
    SATPG_LOG(kInfo) << "suite: loaded " << name << " from cache";
    return std::move(*cached);
  }
  SATPG_LOG(kInfo) << "suite: building " << name;
  Netlist nl = build(name);
  store_cached(nl);
  return nl;
}

}  // namespace satpg
