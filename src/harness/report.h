// Structured run reports: the machine-readable side of an ATPG run.
//
// write_atpg_report_json dumps schema "satpg.atpg_run.v2": circuit and
// engine identity, the invalid-state attribution block (oracle mode,
// num_valid, density, bucket order), the summary numbers the tables print
// (now including the attribution bucket sums and effort_invalid_frac), the
// Figure-3 fe_trace, a per-fault record array (status + full
// FaultSearchStats + per-fault attribution), and the global metrics
// registry. Everything in the report is deterministic — wall-clock times
// and thread counts are deliberately absent, so the same run dumps
// byte-identical JSON at any --threads value (DESIGN.md §5/§6). Timing
// belongs in the trace JSON (base/trace.h), which makes no such promise.
#pragma once

#include <iosfwd>
#include <string>

#include "atpg/parallel.h"
#include "netlist/netlist.h"

namespace satpg {

/// Stream form; the caller owns the stream.
void write_atpg_report_json(std::ostream& os, const Netlist& nl,
                            const ParallelAtpgOptions& opts,
                            const ParallelAtpgResult& res);

/// File form. Returns false when the file cannot be opened.
bool write_atpg_report_json(const std::string& path, const Netlist& nl,
                            const ParallelAtpgOptions& opts,
                            const ParallelAtpgResult& res);

}  // namespace satpg
