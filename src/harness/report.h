// Structured run reports: the machine-readable side of an ATPG run.
//
// write_atpg_report_json dumps schema "satpg.atpg_run.v6": circuit and
// engine identity (v4 adds share_learning and the CDCL solver counters —
// conflicts/propagations/restarts/learned_clauses/cube_exports — in the
// summary and per-fault records; v5 adds cube-sharing provenance: a
// per-fault "cube_sources" array naming which exporter fault and epoch
// each imported cube came from, and a top-level "cube_provenance" block
// whose exports total equals the summary cube_exports counter; v6 adds
// the "build_info" provenance block, the top-level "memory" block of
// per-subsystem byte accounting, a per-fault "peak_bytes" field, and the
// watchdog block's "memory" budget verdict — see DESIGN.md §11), the
// invalid-state attribution block (oracle mode,
// num_valid, density, bucket order), the watchdog block (threshold, defer
// mode, stuck-fault verdicts — empty when the watchdog is off), the
// summary numbers the tables print (including the attribution bucket sums
// and effort_invalid_frac), the Figure-3 fe_trace, a per-fault record
// array (status + full FaultSearchStats + per-fault attribution), and the
// global metrics registry. Everything in the report is deterministic —
// wall-clock times and thread counts are deliberately absent, so the same
// run dumps byte-identical JSON at any --threads value, with or without
// the live monitor (DESIGN.md §5/§6/§7). Timing belongs in the trace JSON
// (base/trace.h) and the heartbeat stream (base/monitor.h), which make no
// such promise.
#pragma once

#include <iosfwd>
#include <string>

#include "atpg/parallel.h"
#include "netlist/netlist.h"

namespace satpg {

/// Stream form; the caller owns the stream.
void write_atpg_report_json(std::ostream& os, const Netlist& nl,
                            const ParallelAtpgOptions& opts,
                            const ParallelAtpgResult& res);

/// File form. Returns false when the file cannot be opened.
bool write_atpg_report_json(const std::string& path, const Netlist& nl,
                            const ParallelAtpgOptions& opts,
                            const ParallelAtpgResult& res);

/// Flight-recorder event log, NDJSON (one JSON object per line):
///   line 1: header {"schema": "satpg.events.v1", circuit, engine, seed,
///           faults, attempted}
///   then, per attempted fault in collapsed-fault-index order, one fault
///   line {"fault", "index", "status", "evals", "backtracks",
///   "invalid_frac", "events"} followed by its event lines
///   (base/events.h append_event_json).
/// Everything is wall-clock free — the "at" axis is the fault's budget
/// eval counter — so the stream is byte-identical at any --threads value
/// (same contract as the report; DESIGN.md §10).
void write_events_json(std::ostream& os, const Netlist& nl,
                       const ParallelAtpgOptions& opts,
                       const ParallelAtpgResult& res);

/// File form. Returns false when the file cannot be opened.
bool write_events_json(const std::string& path, const Netlist& nl,
                       const ParallelAtpgOptions& opts,
                       const ParallelAtpgResult& res);

}  // namespace satpg
