// Append-only, content-hash-keyed archive of ATPG run reports.
//
// Every report written by harness/report is deterministic (DESIGN.md §5/§6),
// so its byte content is its identity: the archive keys stored reports by
// the FNV-1a 64 hash of the full report text. add() is idempotent — the
// same report text always maps to the same hash, the stored file is written
// once, and the JSONL index gains at most one line per distinct report.
// Nothing in the store is ever rewritten or timestamped, so archiving the
// same runs in any order on any machine produces the same files.
//
// Layout under the archive directory (default "runs/", git-ignored):
//   runs/index.jsonl     one JSON object per line, append-only
//   runs/<hash>.json     the verbatim report text
//
// Each index line records the report's identity triple (circuit, engine,
// schema) plus a config digest — the hash of the engine/seed configuration
// alone — so tooling can find "the same configuration, different code
// version" pairs to diff.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace satpg {

struct ArchiveEntry {
  std::string hash;           ///< 16-hex FNV-1a of the report text
  std::string schema;         ///< e.g. "satpg.atpg_run.v3"
  std::string circuit;        ///< circuit name from the report
  std::string engine;         ///< engine kind from the report
  std::string config_digest;  ///< 16-hex hash of circuit+engine+seed config
  std::string path;           ///< stored report path (within the archive dir)
};

class RunArchive {
 public:
  explicit RunArchive(std::string dir = "runs");

  const std::string& dir() const { return dir_; }

  /// Validate + parse `report_text` (any satpg.atpg_run.* schema), store it
  /// under its content hash, and append an index line unless the hash is
  /// already indexed. Throws std::runtime_error on malformed input or I/O
  /// failure. Idempotent.
  ArchiveEntry add(const std::string& report_text);

  /// add() on a file's contents. Throws std::runtime_error when unreadable.
  ArchiveEntry add_file(const std::string& path);

  /// Index entries in append order. Malformed index lines are skipped.
  std::vector<ArchiveEntry> list() const;

  /// Resolve a full hash or unique prefix (>= 4 hex digits). Empty when
  /// not found or ambiguous.
  std::optional<ArchiveEntry> find(const std::string& hash_prefix) const;

  /// Stored report text for an entry. Throws std::runtime_error when the
  /// stored file is missing.
  std::string load(const ArchiveEntry& entry) const;

 private:
  std::string index_path() const;
  std::string report_path(const std::string& hash) const;

  std::string dir_;
};

/// Resolve a report spec the way the CLI accepts one: a readable file path
/// wins, otherwise `spec` is treated as an archive hash (or unique prefix).
/// Returns the report text; throws std::runtime_error when neither works.
std::string load_report_spec(const RunArchive& archive,
                             const std::string& spec);

}  // namespace satpg
