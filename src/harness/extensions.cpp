#include "harness/extensions.h"

#include "analysis/srf.h"
#include "atpg/compact.h"
#include "base/strutil.h"
#include "dft/scan.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "synth/synthesize.h"

namespace satpg {

Table run_srf_census(const ExperimentOptions& opts) {
  Table t({"circuit", "#collapsed faults", "detectable", "invalid-SRF",
           "unobservable-SRF"});
  // Reduced-scale pair: product-machine BDDs over 2x state bits.
  FsmGenSpec gen;
  for (const auto& s : mcnc_specs())
    if (s.name == "s820") gen = s;
  gen = scaled_spec(gen, 0.5);
  gen.seed ^= opts.seed * 0x9e3779b97f4a7c15ULL;
  const Fsm fsm = generate_control_fsm(gen);
  SynthOptions so;
  so.encode = EncodeAlgo::kOutputDominant;
  so.seed = opts.seed;
  const SynthResult res = synthesize(fsm, so);
  const RetimeResult rt = retime_to_dff_target(
      res.netlist, 3 * res.netlist.num_dffs(), res.name + ".re");

  for (const Netlist* nl : {&res.netlist, &rt.netlist}) {
    // Every product-machine classification costs a reachability fixpoint;
    // a deterministic sample keeps the census to seconds. (The test suite
    // audits the oracle exhaustively on smaller machines.)
    std::vector<Fault> faults;
    const auto collapsed = collapse_faults(*nl);
    const std::size_t stride = std::max<std::size_t>(1, collapsed.size() / 60);
    for (std::size_t i = 0; i < collapsed.size(); i += stride)
      faults.push_back(collapsed[i].representative);
    const SrfCensus census = classify_faults(*nl, faults);
    t.add_row({nl->name(),
               std::to_string(faults.size()) + " of " +
                   std::to_string(collapsed.size()),
               std::to_string(census.detectable),
               std::to_string(census.invalid),
               std::to_string(census.unobservable)});
  }
  return t;
}

Table run_ablation_scan(Suite& suite, const ExperimentOptions& opts) {
  Table t({"circuit", "variant", "#DFF scanned", "%FC", "%FE", "kEv"});
  for (const char* name : {"s820.ji.sr.re", "dk16.ji.sd.re"}) {
    const Netlist nl = suite.circuit(name);
    const auto run_opts = scaled_run_options(opts, EngineKind::kHitec);

    const auto seq = run_atpg(nl, run_opts);
    t.add_row({name, "sequential", "0", strprintf("%.1f", seq.fault_coverage),
               strprintf("%.1f", seq.fault_efficiency),
               strprintf("%.0f", static_cast<double>(seq.evals) / 1000.0)});

    const auto partial_ffs = select_cycle_breaking_ffs(nl);
    const ScanResult partial = insert_partial_scan(nl, partial_ffs);
    const auto pr = run_atpg(partial.netlist, run_opts);
    t.add_row({name, "partial scan", std::to_string(partial.chain.size()),
               strprintf("%.1f", pr.fault_coverage),
               strprintf("%.1f", pr.fault_efficiency),
               strprintf("%.0f", static_cast<double>(pr.evals) / 1000.0)});

    const ScanResult full = insert_full_scan(nl);
    const auto fr = run_atpg(full.netlist, run_opts);
    t.add_row({name, "full scan", std::to_string(full.chain.size()),
               strprintf("%.1f", fr.fault_coverage),
               strprintf("%.1f", fr.fault_efficiency),
               strprintf("%.0f", static_cast<double>(fr.evals) / 1000.0)});
  }
  return t;
}

Table run_compaction_study(Suite& suite, const ExperimentOptions& opts) {
  Table t({"circuit", "#sequences", "#after compaction",
           "collapsed detected (before)", "collapsed detected (after)"});
  for (const char* name : {"dk16.ji.sd", "s820.jc.sr", "s832.jo.sr"}) {
    const Netlist nl = suite.circuit(name);
    auto run_opts = scaled_run_options(opts, EngineKind::kHitec);
    run_opts.random_sequences = 16;  // leave room to compact
    const auto run = run_atpg(nl, run_opts);
    const auto c = compact_tests(nl, run.tests);
    t.add_row({name, std::to_string(c.before), std::to_string(c.after),
               std::to_string(c.detected_before),
               std::to_string(c.detected_after)});
  }
  return t;
}

}  // namespace satpg
