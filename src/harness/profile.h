// The satpg.profile.v1 sidecar: the serialized form of a Profiler
// snapshot (base/profiler.h) plus the identity and provenance context
// that makes the numbers interpretable — circuit/engine identity (shaped
// exactly like the atpg_run report's, so the archive derives the same
// config digest and `satpg inspect --trend` can join report and profile
// rows), build_info, the host CPU model, and the deterministic work
// units (evals, patterns) the derived rates divide by.
//
// The sidecar is wall-clock-plane by definition (DESIGN.md §12): nothing
// in it is reproducible across machines or runs, which is why it is a
// separate file and never a block inside the deterministic report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "base/profiler.h"

namespace satpg {

struct ProfileArtifact {
  std::string tool;     ///< "atpg", "fsim", "bench"
  std::string circuit;  ///< netlist name
  /// Engine identity, mirroring the report's engine block so the archive
  /// config digest matches the paired deterministic report. Tools without
  /// an ATPG engine (fsim) leave kind at its default and the limits 0.
  std::string engine_kind = "none";
  std::uint64_t eval_limit = 0;
  std::uint64_t backtrack_limit = 0;
  std::uint64_t max_forward_frames = 0;
  std::uint64_t max_backward_frames = 0;
  std::uint64_t seed = 0;
  /// Deterministic work units for derived rates; 0 suppresses the rate.
  std::uint64_t evals = 0;
  std::uint64_t patterns = 0;
  ProfSnapshot snap;
};

/// Write the satpg.profile.v1 JSON document. Fixed shape: every phase
/// appears (sorted), every counter slot appears, derived rates are
/// emitted only when their inputs are nonzero.
void write_profile_json(std::ostream& os, const ProfileArtifact& a);

/// write_profile_json to a file; false (after printing to stderr) when
/// the file cannot be written.
bool write_profile_json(const std::string& path, const ProfileArtifact& a);

}  // namespace satpg
