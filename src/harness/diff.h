// Deterministic differ over archived atpg_run reports.
//
// parse_run_report loads any satpg.atpg_run.v1-v6 report into a flat struct
// (v1 reports simply have zero attribution fields, pre-v4 reports zero
// cdcl solver counters, pre-v5 reports no cube provenance, pre-v6 reports
// no build_info or memory totals); diff_runs computes
// coverage/effort/per-fault deltas, ranked regressions, and the
// invalid-state-fraction scatter the paper's Figure 3 mechanism predicts;
// write_run_diff renders everything as aligned text. All of it is a pure
// function of the two input texts — identical inputs give byte-identical
// output, so diff output can itself be diffed across machines and thread
// counts.
//
// evaluate_gate applies regression thresholds (coverage drop in points,
// effort growth as a ratio) for the tools/bench_gate CI gate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace satpg {

/// One report, flattened for comparison. Unknown/missing numeric fields
/// parse as 0 (a v1 report has no attribution data).
struct RunReport {
  std::string schema;
  std::string circuit;
  std::string engine;
  std::uint64_t seed = 0;
  double fault_coverage = 0.0;
  double fault_efficiency = 0.0;
  std::uint64_t evals = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t justify_calls = 0;
  std::uint64_t justify_failures = 0;
  double effort_invalid_frac = 0.0;
  std::string oracle_mode;  ///< "exact"/"superset"/"disabled"/"" (v1)
  double density = -1.0;    ///< -1 when unknown
  /// v6 build provenance, flattened to one comparable line
  /// ("gcc 13.2.0 Release san=none simd=avx2/avx2"); "" pre-v6. Two runs
  /// whose lines differ are perf-incomparable; write_run_diff flags them.
  std::string build_line;
  /// v6 memory block totals (0 pre-v6): the sum-of-subsystem-peaks bound
  /// and cumulative allocated logical bytes.
  std::uint64_t mem_peak_bytes = 0;
  std::uint64_t mem_allocated_bytes = 0;

  struct PerFault {
    std::string name;
    std::string status;  ///< "detected"/"redundant"/"aborted"
    bool attempted = false;
    std::uint64_t evals = 0;
    std::uint64_t backtracks = 0;
    std::uint64_t justify_failures = 0;
    double effort_invalid_frac = 0.0;
  };
  std::vector<PerFault> per_fault;
};

/// Parse a report (text form). Returns false with a one-line *error (when
/// non-null) on malformed input or a non-atpg_run schema.
bool parse_run_report(const std::string& json_text, RunReport* out,
                      std::string* error = nullptr);

struct DiffOptions {
  /// Max rows in the ranked per-fault regression table.
  std::size_t top_regressions = 10;
  /// Scatter-table bucket count over effort_invalid_frac [0, 1].
  std::size_t scatter_bins = 10;
};

/// b relative to a ("a -> b": a is the baseline).
struct RunDiff {
  double coverage_delta = 0.0;    ///< b - a, percentage points
  double efficiency_delta = 0.0;  ///< b - a, percentage points
  double evals_ratio = 1.0;       ///< b / a (1 when a == 0 and b == 0)
  double backtracks_ratio = 1.0;
  double invalid_frac_delta = 0.0;  ///< run-level effort_invalid_frac b - a

  struct FaultDelta {
    std::string name;
    std::string status_a, status_b;
    std::int64_t evals_delta = 0;  ///< b - a
    double invalid_frac_a = 0.0, invalid_frac_b = 0.0;
  };
  /// Faults present in both reports whose evals grew, ranked by delta
  /// descending (name ascending as tie-break), truncated to
  /// top_regressions.
  std::vector<FaultDelta> regressions;
  /// Faults whose status changed (detected -> aborted etc.), name order.
  std::vector<FaultDelta> status_changes;

  /// Scatter rows: per-fault effort_invalid_frac histogram, bin i covering
  /// [i/bins, (i+1)/bins) (last bin closed), for each side.
  std::vector<std::uint64_t> scatter_a, scatter_b;
  /// Attempted-fault counts behind the scatter.
  std::uint64_t attempted_a = 0, attempted_b = 0;
};

RunDiff diff_runs(const RunReport& a, const RunReport& b,
                  const DiffOptions& opts = {});

/// Human-readable (and byte-stable) rendering of a diff.
void write_run_diff(std::ostream& os, const RunReport& a, const RunReport& b,
                    const RunDiff& diff);

// ---- regression gate --------------------------------------------------------

struct GateOptions {
  /// Fail when candidate coverage drops more than this many points below
  /// the baseline.
  double max_coverage_drop = 0.5;
  /// Fail when candidate evals exceed baseline evals by more than this
  /// factor.
  double max_effort_ratio = 1.25;
};

struct GateResult {
  bool pass = true;
  /// One line per violated threshold (empty when pass).
  std::vector<std::string> violations;
};

/// Apply the thresholds to a baseline->candidate diff. Pure.
GateResult evaluate_gate(const RunReport& baseline,
                         const RunReport& candidate,
                         const GateOptions& opts = {});

}  // namespace satpg
