#include "harness/inspect.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <vector>

#include "base/json.h"
#include "base/strutil.h"
#include "base/table.h"

namespace satpg {

namespace {

// ---- parsed model -----------------------------------------------------------

/// One flight-recorder event, as read back from the NDJSON log.
struct EventRec {
  std::string k;
  std::uint64_t at = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::uint64_t bytes = 0;  ///< v6 byte annotation (db_reduce reclaimed, …)
  std::string cube;
  std::string src;
  std::vector<std::uint64_t> lbd;
};

struct FaultRec {
  std::string name;
  std::size_t index = 0;
  std::string status;
  bool attempted = true;
  std::uint64_t evals = 0;
  std::uint64_t backtracks = 0;
  double invalid_frac = 0.0;
  std::uint64_t cube_exports = 0;
  std::uint64_t peak_bytes = 0;  ///< v6 reports; 0 before
  std::vector<EventRec> events;  ///< event-log sources only
  struct Source {
    std::string from;
    std::uint64_t epoch = 0;
    std::uint64_t hits = 0;
  };
  std::vector<Source> sources;
};

struct ExporterRow {
  std::string fault;
  std::uint64_t cubes = 0;
  std::uint64_t beneficiaries = 0;
  std::uint64_t hits = 0;
};

/// One subsystem row of a v6 report's "memory" block.
struct MemRow {
  std::string name;
  std::uint64_t live = 0;
  std::uint64_t peak = 0;
  std::uint64_t allocated = 0;
  std::uint64_t allocs = 0;
};

/// Either artifact, normalized. `is_events` tells which one it was.
struct Doc {
  bool is_events = false;
  std::string schema;
  std::string circuit;
  std::string engine;
  std::uint64_t seed = 0;
  std::size_t total_faults = 0;
  std::vector<FaultRec> faults;  ///< attempted faults only for event logs
  std::vector<std::pair<std::uint64_t, double>> fe_trace;  ///< reports only
  std::uint64_t prov_exports = 0;
  std::uint64_t prov_hits = 0;
  std::vector<ExporterRow> exporters;
  double fault_coverage = 0.0;
  double fault_efficiency = 0.0;
  std::uint64_t evals = 0;
  // v6 memory block (empty rows = report predates it / event log).
  bool has_memory = false;
  std::vector<MemRow> memory;          ///< writer's sorted-name order
  std::uint64_t mem_total_live = 0;
  std::uint64_t mem_total_peak = 0;    ///< sum-of-subsystem-peaks bound
  std::uint64_t mem_total_allocated = 0;
  std::uint64_t mem_budget = 0;        ///< watchdog.memory: bytes, 0 = off
  std::uint64_t mem_tripped = 0;
  std::uint64_t mem_requeued = 0;
  std::string mem_verdict;             ///< "off" / "clean" / "degraded"
};

std::string fmt_u64(std::uint64_t v) {
  return strprintf("%llu", static_cast<unsigned long long>(v));
}

void parse_event(const JsonValue& v, EventRec* e) {
  e->k = v.str_or("k", "?");
  e->at = v.uint_or("at", 0);
  e->a = static_cast<std::int64_t>(v.num_or("a", 0.0));
  e->b = static_cast<std::int64_t>(v.num_or("b", 0.0));
  e->bytes = v.uint_or("bytes", 0);
  e->cube = v.str_or("cube", "");
  e->src = v.str_or("src", "");
  if (const JsonValue* lbd = v.find("lbd"); lbd && lbd->is_array())
    for (const JsonValue& n : lbd->array())
      e->lbd.push_back(
          n.is_number() ? static_cast<std::uint64_t>(n.number()) : 0);
}

/// Aggregate provenance from the parsed faults (event logs carry no
/// rollup block): exports = cube_export events; hits = cube_import +
/// learn-failure hits, attributed to their src tag.
void derive_provenance(Doc* doc) {
  std::map<std::string, ExporterRow> by_name;
  for (const FaultRec& f : doc->faults) {
    if (f.cube_exports > 0) {
      ExporterRow& row = by_name[f.name];
      row.cubes += f.cube_exports;
      doc->prov_exports += f.cube_exports;
    }
    for (const FaultRec::Source& s : f.sources) {
      ExporterRow& row = by_name[s.from];
      ++row.beneficiaries;
      row.hits += s.hits;
      doc->prov_hits += s.hits;
    }
  }
  for (auto& [name, row] : by_name) {
    row.fault = name;
    doc->exporters.push_back(row);
  }
}

bool parse_events_doc(const std::string& text, const JsonValue& header,
                      Doc* doc, std::string* error) {
  doc->is_events = true;
  doc->schema = header.str_or("schema", "?");
  doc->circuit = header.str_or("circuit", "?");
  doc->engine = header.str_or("engine", "?");
  doc->seed = header.uint_or("seed", 0);
  doc->total_faults = header.uint_or("faults", 0);

  std::size_t pos = text.find('\n');
  pos = pos == std::string::npos ? text.size() : pos + 1;
  std::size_t line_no = 1;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    std::string jerr;
    if (!json_parse(line, &v, &jerr)) {
      if (error)
        *error = strprintf("line %zu: %s", line_no, jerr.c_str());
      return false;
    }
    if (v.find("fault") != nullptr) {
      FaultRec f;
      f.name = v.str_or("fault", "?");
      f.index = static_cast<std::size_t>(v.uint_or("index", 0));
      f.status = v.str_or("status", "?");
      f.evals = v.uint_or("evals", 0);
      f.backtracks = v.uint_or("backtracks", 0);
      f.invalid_frac = v.num_or("invalid_frac", 0.0);
      doc->faults.push_back(std::move(f));
      continue;
    }
    if (v.find("k") == nullptr) continue;  // ignorable extension line
    if (doc->faults.empty()) {
      if (error) *error = strprintf("line %zu: event before any fault line",
                                    line_no);
      return false;
    }
    EventRec e;
    parse_event(v, &e);
    FaultRec& f = doc->faults.back();
    if (e.k == "cube_export") ++f.cube_exports;
    // Per-fault source aggregation (by exporter name; the epoch shows in
    // the timeline, the rollup does not need it).
    if ((e.k == "cube_import" || e.k == "learn_hit") && !e.src.empty()) {
      bool found = false;
      for (FaultRec::Source& s : f.sources)
        if (s.from == e.src) {
          ++s.hits;
          found = true;
          break;
        }
      if (!found) f.sources.push_back({e.src, 0, 1});
    }
    f.events.push_back(std::move(e));
  }
  for (FaultRec& f : doc->faults)
    std::sort(f.sources.begin(), f.sources.end(),
              [](const FaultRec::Source& x, const FaultRec::Source& y) {
                return x.from < y.from;
              });
  derive_provenance(doc);
  return true;
}

bool parse_report_doc(const JsonValue& root, Doc* doc, std::string* error) {
  doc->is_events = false;
  doc->schema = root.str_or("schema", "?");
  if (const JsonValue* c = root.find("circuit"))
    doc->circuit = c->str_or("name", "?");
  if (const JsonValue* e = root.find("engine")) {
    doc->engine = e->str_or("kind", "?");
    doc->seed = e->uint_or("seed", 0);
  }
  const JsonValue* summary = root.find("summary");
  if (summary == nullptr || !summary->is_object()) {
    if (error) *error = "report lacks a summary object";
    return false;
  }
  doc->total_faults = summary->uint_or("total_faults", 0);
  doc->fault_coverage = summary->num_or("fault_coverage", 0.0);
  doc->fault_efficiency = summary->num_or("fault_efficiency", 0.0);
  doc->evals = summary->uint_or("evals", 0);

  if (const JsonValue* pf = root.find("per_fault"); pf && pf->is_array()) {
    doc->faults.reserve(pf->array().size());
    for (std::size_t i = 0; i < pf->array().size(); ++i) {
      const JsonValue& v = pf->array()[i];
      if (!v.is_object()) continue;
      FaultRec f;
      f.name = v.str_or("fault", "?");
      f.index = i;
      f.status = v.str_or("status", "?");
      f.attempted = v.bool_or("attempted", false);
      f.evals = v.uint_or("evals", 0);
      f.backtracks = v.uint_or("backtracks", 0);
      f.invalid_frac = v.num_or("effort_invalid_frac", 0.0);
      f.cube_exports = v.uint_or("cube_exports", 0);
      f.peak_bytes = v.uint_or("peak_bytes", 0);
      if (const JsonValue* cs = v.find("cube_sources"); cs && cs->is_array())
        for (const JsonValue& s : cs->array())
          f.sources.push_back({s.str_or("from", ""), s.uint_or("epoch", 0),
                               s.uint_or("hits", 0)});
      doc->faults.push_back(std::move(f));
    }
  }
  if (const JsonValue* fe = root.find("fe_trace"); fe && fe->is_array())
    for (const JsonValue& p : fe->array())
      if (p.is_array() && p.array().size() == 2)
        doc->fe_trace.emplace_back(
            static_cast<std::uint64_t>(p.array()[0].number()),
            p.array()[1].number());

  if (const JsonValue* prov = root.find("cube_provenance")) {
    // v5: read the rollup the writer computed.
    doc->prov_exports = prov->uint_or("exports", 0);
    doc->prov_hits = prov->uint_or("import_hits", 0);
    if (const JsonValue* ex = prov->find("exporters"); ex && ex->is_array())
      for (const JsonValue& v : ex->array())
        doc->exporters.push_back({v.str_or("fault", ""),
                                  v.uint_or("cubes", 0),
                                  v.uint_or("beneficiaries", 0),
                                  v.uint_or("hits", 0)});
  } else {
    derive_provenance(doc);  // pre-v5 reports: nothing to derive from
  }

  // v6: per-subsystem byte accounting + the watchdog's memory verdict.
  if (const JsonValue* mem = root.find("memory"); mem && mem->is_object()) {
    doc->has_memory = true;
    if (const JsonValue* subs = mem->find("subsystems");
        subs && subs->is_object())
      for (const auto& [name, v] : subs->members()) {
        MemRow row;
        row.name = name;
        row.live = v.uint_or("live", 0);
        row.peak = v.uint_or("peak", 0);
        row.allocated = v.uint_or("allocated", 0);
        row.allocs = v.uint_or("allocs", 0);
        doc->memory.push_back(std::move(row));
      }
    if (const JsonValue* tot = mem->find("total")) {
      doc->mem_total_live = tot->uint_or("live", 0);
      doc->mem_total_peak = tot->uint_or("peak", 0);
      doc->mem_total_allocated = tot->uint_or("allocated", 0);
    }
  }
  if (const JsonValue* wd = root.find("watchdog"))
    if (const JsonValue* wm = wd->find("memory")) {
      doc->mem_budget = wm->uint_or("budget", 0);
      doc->mem_tripped = wm->uint_or("tripped", 0);
      doc->mem_requeued = wm->uint_or("requeued", 0);
      doc->mem_verdict = wm->str_or("verdict", "");
    }
  return true;
}

bool parse_doc(const std::string& text, Doc* doc, std::string* error) {
  // An event log is NDJSON whose first line is its header; a report is one
  // multi-line JSON document (its first line alone never parses).
  std::size_t nl = text.find('\n');
  const std::string first =
      text.substr(0, nl == std::string::npos ? text.size() : nl);
  JsonValue v;
  if (json_parse(first, &v) &&
      v.str_or("schema", "") == "satpg.events.v1")
    return parse_events_doc(text, v, doc, error);
  std::string jerr;
  if (!json_parse(text, &v, &jerr)) {
    if (error) *error = jerr;
    return false;
  }
  const std::string schema = v.str_or("schema", "");
  if (schema.rfind("satpg.atpg_run.", 0) != 0) {
    if (error)
      *error = "not an event log or atpg_run report (schema \"" + schema +
               "\")";
    return false;
  }
  return parse_report_doc(v, doc, error);
}

// ---- rendering helpers ------------------------------------------------------

std::string doc_kind(const Doc& doc) {
  return doc.is_events ? "event log" : "report";
}

/// Attempted faults ranked hardest-first: evals desc, invalid fraction
/// desc, name asc. Stable across machines — every key is deterministic.
std::vector<const FaultRec*> hardest(const Doc& doc, std::size_t top) {
  std::vector<const FaultRec*> ranked;
  for (const FaultRec& f : doc.faults)
    if (f.attempted) ranked.push_back(&f);
  std::sort(ranked.begin(), ranked.end(),
            [](const FaultRec* x, const FaultRec* y) {
              if (x->evals != y->evals) return x->evals > y->evals;
              if (x->invalid_frac != y->invalid_frac)
                return x->invalid_frac > y->invalid_frac;
              return x->name < y->name;
            });
  if (ranked.size() > top) ranked.resize(top);
  return ranked;
}

std::string event_detail(const EventRec& e) {
  if (e.k == "window_grow" || e.k == "redundancy_start")
    return strprintf("frames=%lld", static_cast<long long>(e.a));
  if (e.k == "justify_enter")
    return strprintf("depth=%lld cube=%s", static_cast<long long>(e.a),
                     e.cube.c_str());
  if (e.k == "justify_leave")
    return strprintf("depth=%lld outcome=%s", static_cast<long long>(e.a),
                     e.b == 1 ? "ok" : (e.b == 2 ? "invalid" : "fail"));
  if (e.k == "redundancy_verdict")
    return e.b == 1 ? "redundant" : "not-redundant";
  if (e.k == "budget_abort") {
    std::string s =
        strprintf("evals_exhausted=%lld backtracks_exhausted=%lld",
                  static_cast<long long>(e.a), static_cast<long long>(e.b));
    if (e.bytes != 0) s += strprintf(" peak_bytes=%s", fmt_u64(e.bytes).c_str());
    return s;
  }
  if (e.k == "restart")
    return strprintf("n=%lld", static_cast<long long>(e.a));
  if (e.k == "db_reduce") {
    std::string s = strprintf("killed=%lld live=%lld lbd=[",
                              static_cast<long long>(e.a),
                              static_cast<long long>(e.b));
    for (std::size_t i = 0; i < e.lbd.size(); ++i)
      s += (i == 0 ? "" : " ") + fmt_u64(e.lbd[i]);
    s += "]";
    if (e.bytes != 0)
      s += strprintf(" reclaimed=%s", fmt_u64(e.bytes).c_str());
    return s;
  }
  if (e.k == "cube_export") return strprintf("cube=%s", e.cube.c_str());
  if (e.k == "cube_import")
    return strprintf("src=%s epoch=%lld cube=%s", e.src.c_str(),
                     static_cast<long long>(e.a), e.cube.c_str());
  if (e.k == "learn_hit")
    return strprintf("depth=%lld %s%s%s", static_cast<long long>(e.a),
                     e.b == 1 ? "ok" : "fail",
                     e.src.empty() ? "" : " src=", e.src.c_str());
  return "";
}

std::string event_json(const EventRec& e) {
  std::string s = strprintf("{\"k\": \"%s\", \"at\": %s",
                            json_escape(e.k).c_str(), fmt_u64(e.at).c_str());
  if (e.a != 0) s += strprintf(", \"a\": %lld", static_cast<long long>(e.a));
  if (e.b != 0) s += strprintf(", \"b\": %lld", static_cast<long long>(e.b));
  if (e.bytes != 0) s += ", \"bytes\": " + fmt_u64(e.bytes);
  if (!e.cube.empty())
    s += ", \"cube\": \"" + json_escape(e.cube) + "\"";
  if (!e.src.empty()) s += ", \"src\": \"" + json_escape(e.src) + "\"";
  if (!e.lbd.empty()) {
    s += ", \"lbd\": [";
    for (std::size_t i = 0; i < e.lbd.size(); ++i)
      s += (i == 0 ? "" : ", ") + fmt_u64(e.lbd[i]);
    s += "]";
  }
  return s + "}";
}

const FaultRec* find_fault(const Doc& doc, const std::string& spec) {
  const bool numeric =
      !spec.empty() &&
      std::all_of(spec.begin(), spec.end(),
                  [](unsigned char c) { return std::isdigit(c); });
  for (const FaultRec& f : doc.faults) {
    if (f.name == spec) return &f;
    if (numeric && f.index == static_cast<std::size_t>(std::stoull(spec)))
      return &f;
  }
  return nullptr;
}

void render_overview_txt(std::ostream& os, const Doc& doc,
                         const InspectOptions& opts) {
  std::size_t attempted = 0;
  for (const FaultRec& f : doc.faults)
    if (f.attempted) ++attempted;
  os << "=== inspect: " << doc.circuit << " (" << doc.engine << ", seed "
     << doc.seed << ") — " << doc_kind(doc) << " " << doc.schema << " ===\n";
  os << "faults: " << doc.total_faults << " total, " << attempted
     << " attempted\n\n";

  const auto ranked = hardest(doc, opts.top);
  os << "hardest faults (top " << ranked.size() << " by evals):\n";
  Table t(doc.is_events
              ? std::vector<std::string>{"rank", "fault", "status", "evals",
                                         "backtracks", "inv_frac", "events"}
              : std::vector<std::string>{"rank", "fault", "status", "evals",
                                         "backtracks", "inv_frac"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const FaultRec& f = *ranked[i];
    std::vector<std::string> row{strprintf("%zu", i + 1), f.name, f.status,
                                 fmt_u64(f.evals), fmt_u64(f.backtracks),
                                 strprintf("%.4f", f.invalid_frac)};
    if (doc.is_events) row.push_back(strprintf("%zu", f.events.size()));
    t.add_row(std::move(row));
  }
  os << t.to_string() << "\n";

  os << "cube provenance: " << doc.prov_exports << " exports, "
     << doc.prov_hits << " import hits\n";
  if (!doc.exporters.empty()) {
    Table p({"exporter", "cubes", "beneficiaries", "hits"});
    for (const ExporterRow& e : doc.exporters)
      p.add_row({e.fault.empty() ? "(unknown)" : e.fault, fmt_u64(e.cubes),
                 fmt_u64(e.beneficiaries), fmt_u64(e.hits)});
    os << p.to_string();
  }
}

void render_overview_json(std::ostream& os, const Doc& doc,
                          const InspectOptions& opts) {
  std::size_t attempted = 0;
  for (const FaultRec& f : doc.faults)
    if (f.attempted) ++attempted;
  os << "{\n  \"schema\": \"satpg.inspect.v1\",\n";
  os << "  \"source\": {\"kind\": \"" << (doc.is_events ? "events" : "report")
     << "\", \"schema\": \"" << json_escape(doc.schema) << "\", \"circuit\": \""
     << json_escape(doc.circuit) << "\", \"engine\": \""
     << json_escape(doc.engine) << "\", \"seed\": " << doc.seed << "},\n";
  os << "  \"faults\": " << doc.total_faults << ", \"attempted\": "
     << attempted << ",\n";
  os << "  \"hardest\": [";
  const auto ranked = hardest(doc, opts.top);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const FaultRec& f = *ranked[i];
    os << (i == 0 ? "\n    " : ",\n    ") << "{\"fault\": \""
       << json_escape(f.name) << "\", \"status\": \""
       << json_escape(f.status) << "\", \"evals\": " << f.evals
       << ", \"backtracks\": " << f.backtracks << ", \"invalid_frac\": "
       << strprintf("%.17g", f.invalid_frac)
       << ", \"events\": " << f.events.size() << "}";
  }
  os << "],\n";
  os << "  \"provenance\": {\"exports\": " << doc.prov_exports
     << ", \"import_hits\": " << doc.prov_hits << ", \"exporters\": [";
  for (std::size_t i = 0; i < doc.exporters.size(); ++i) {
    const ExporterRow& e = doc.exporters[i];
    os << (i == 0 ? "\n    " : ",\n    ") << "{\"fault\": \""
       << json_escape(e.fault) << "\", \"cubes\": " << e.cubes
       << ", \"beneficiaries\": " << e.beneficiaries << ", \"hits\": "
       << e.hits << "}";
  }
  os << "]}\n}\n";
}

/// Attempted faults ranked by per-attempt peak bytes desc, evals desc,
/// name asc — the memory view's analogue of hardest().
std::vector<const FaultRec*> hungriest(const Doc& doc, std::size_t top) {
  std::vector<const FaultRec*> ranked;
  for (const FaultRec& f : doc.faults)
    if (f.attempted) ranked.push_back(&f);
  std::sort(ranked.begin(), ranked.end(),
            [](const FaultRec* x, const FaultRec* y) {
              if (x->peak_bytes != y->peak_bytes)
                return x->peak_bytes > y->peak_bytes;
              if (x->evals != y->evals) return x->evals > y->evals;
              return x->name < y->name;
            });
  if (ranked.size() > top) ranked.resize(top);
  return ranked;
}

void render_memory_txt(std::ostream& os, const Doc& doc,
                       const InspectOptions& opts) {
  os << "=== memory: " << doc.circuit << " (" << doc.engine << ", seed "
     << doc.seed << ") — " << doc.schema << " ===\n";
  os << "subsystems (logical bytes):\n";
  Table t({"subsystem", "live", "peak", "allocated", "allocs"});
  for (const MemRow& r : doc.memory)
    t.add_row({r.name, fmt_u64(r.live), fmt_u64(r.peak),
               fmt_u64(r.allocated), fmt_u64(r.allocs)});
  t.add_row({"total", fmt_u64(doc.mem_total_live),
             fmt_u64(doc.mem_total_peak),
             fmt_u64(doc.mem_total_allocated), ""});
  os << t.to_string() << "\n";

  if (!doc.mem_verdict.empty()) {
    os << "budget: ";
    if (doc.mem_budget == 0)
      os << "off";
    else
      os << doc.mem_budget << " bytes per attempt, " << doc.mem_tripped
         << " tripped, " << doc.mem_requeued << " requeued";
    os << " (verdict: " << doc.mem_verdict << ")\n\n";
  }

  const auto ranked = hungriest(doc, opts.top);
  os << "hungriest faults (top " << ranked.size() << " by peak bytes):\n";
  Table h({"rank", "fault", "status", "peak_bytes", "evals"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const FaultRec& f = *ranked[i];
    h.add_row({strprintf("%zu", i + 1), f.name, f.status,
               fmt_u64(f.peak_bytes), fmt_u64(f.evals)});
  }
  os << h.to_string();
}

void render_memory_json(std::ostream& os, const Doc& doc,
                        const InspectOptions& opts) {
  os << "{\n  \"schema\": \"satpg.inspect_memory.v1\",\n";
  os << "  \"source\": {\"schema\": \"" << json_escape(doc.schema)
     << "\", \"circuit\": \"" << json_escape(doc.circuit)
     << "\", \"engine\": \"" << json_escape(doc.engine)
     << "\", \"seed\": " << doc.seed << "},\n";
  os << "  \"subsystems\": {";
  for (std::size_t i = 0; i < doc.memory.size(); ++i) {
    const MemRow& r = doc.memory[i];
    os << (i == 0 ? "\n    " : ",\n    ") << "\"" << json_escape(r.name)
       << "\": {\"live\": " << r.live << ", \"peak\": " << r.peak
       << ", \"allocated\": " << r.allocated << ", \"allocs\": " << r.allocs
       << "}";
  }
  os << "\n  },\n";
  os << "  \"total\": {\"live\": " << doc.mem_total_live
     << ", \"peak\": " << doc.mem_total_peak
     << ", \"allocated\": " << doc.mem_total_allocated << "},\n";
  os << "  \"budget\": {\"bytes\": " << doc.mem_budget
     << ", \"tripped\": " << doc.mem_tripped
     << ", \"requeued\": " << doc.mem_requeued << ", \"verdict\": \""
     << json_escape(doc.mem_verdict) << "\"},\n";
  os << "  \"hungriest\": [";
  const auto ranked = hungriest(doc, opts.top);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const FaultRec& f = *ranked[i];
    os << (i == 0 ? "\n    " : ",\n    ") << "{\"fault\": \""
       << json_escape(f.name) << "\", \"status\": \""
       << json_escape(f.status) << "\", \"peak_bytes\": " << f.peak_bytes
       << ", \"evals\": " << f.evals << "}";
  }
  os << "]\n}\n";
}

// ---- profile sidecar view ---------------------------------------------------

/// One phase row of a satpg.profile.v1 sidecar.
struct ProfRow {
  std::string name;
  std::string subsystem;
  std::uint64_t calls = 0;
  std::uint64_t task_ns = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_refs = 0;
  std::uint64_t cache_misses = 0;
};

/// A parsed satpg.profile.v1 sidecar, plus the same configuration string
/// the archive digests — the join key for the trend view.
struct ProfDoc {
  std::string schema;
  std::string tool;
  std::string circuit;
  std::string engine;
  std::string backend;
  std::string host_cpu;
  std::string config;  ///< archive identity string (pre-digest)
  double wall_seconds = 0.0;
  std::uint64_t evals = 0;
  std::uint64_t patterns = 0;
  std::vector<ProfRow> phases;  ///< writer's sorted-name order
  ProfRow total;
  /// Derived rates, in writer order (cycles_per_eval, evals_per_second, …).
  std::vector<std::pair<std::string, double>> derived;
};

void parse_prof_row(const JsonValue& v, ProfRow* r) {
  r->calls = v.uint_or("calls", 0);
  r->task_ns = v.uint_or("task_clock_ns", 0);
  r->cycles = v.uint_or("cycles", 0);
  r->instructions = v.uint_or("instructions", 0);
  r->cache_refs = v.uint_or("cache_references", 0);
  r->cache_misses = v.uint_or("cache_misses", 0);
}

/// The archive's pre-digest identity string for any document carrying the
/// shared circuit/engine identity blocks (report or profile sidecar).
std::string config_of(const JsonValue& root) {
  std::string circuit = "?";
  if (const JsonValue* c = root.find("circuit"))
    circuit = c->str_or("name", "?");
  std::string config = circuit + "|";
  const JsonValue* e = root.find("engine");
  static const JsonValue kEmpty;
  if (e == nullptr) e = &kEmpty;
  config += strprintf(
      "%s eval=%llu bt=%llu fwd=%llu bwd=%llu seed=%llu",
      e->str_or("kind", "?").c_str(),
      static_cast<unsigned long long>(e->uint_or("eval_limit", 0)),
      static_cast<unsigned long long>(e->uint_or("backtrack_limit", 0)),
      static_cast<unsigned long long>(e->uint_or("max_forward_frames", 0)),
      static_cast<unsigned long long>(e->uint_or("max_backward_frames", 0)),
      static_cast<unsigned long long>(e->uint_or("seed", 0)));
  return config;
}

bool parse_profile_doc(const JsonValue& root, ProfDoc* doc,
                       std::string* error) {
  doc->schema = root.str_or("schema", "?");
  if (doc->schema.rfind("satpg.profile.", 0) != 0) {
    if (error)
      *error = "not a profile sidecar (schema \"" + doc->schema +
               "\"; need --profile-json output)";
    return false;
  }
  doc->tool = root.str_or("tool", "?");
  if (const JsonValue* c = root.find("circuit"))
    doc->circuit = c->str_or("name", "?");
  if (const JsonValue* e = root.find("engine"))
    doc->engine = e->str_or("kind", "?");
  doc->backend = root.str_or("backend", "?");
  doc->host_cpu = root.str_or("host_cpu", "");
  doc->config = config_of(root);
  doc->wall_seconds = root.num_or("wall_seconds", 0.0);
  if (const JsonValue* w = root.find("work")) {
    doc->evals = w->uint_or("evals", 0);
    doc->patterns = w->uint_or("patterns", 0);
  }
  if (const JsonValue* ph = root.find("phases"); ph && ph->is_object())
    for (const auto& [name, v] : ph->members()) {
      ProfRow r;
      r.name = name;
      r.subsystem = v.str_or("subsystem", "?");
      parse_prof_row(v, &r);
      doc->phases.push_back(std::move(r));
    }
  if (const JsonValue* tot = root.find("total"))
    parse_prof_row(*tot, &doc->total);
  if (const JsonValue* d = root.find("derived"); d && d->is_object())
    for (const auto& [name, v] : d->members())
      if (v.is_number()) doc->derived.emplace_back(name, v.number());
  return true;
}

/// Phases ranked costliest-first: task-clock desc (the counter both
/// backends drive), then name asc. Zero-call phases are dropped.
std::vector<const ProfRow*> ranked_phases(const ProfDoc& doc) {
  std::vector<const ProfRow*> ranked;
  for (const ProfRow& r : doc.phases)
    if (r.calls > 0) ranked.push_back(&r);
  std::sort(ranked.begin(), ranked.end(),
            [](const ProfRow* x, const ProfRow* y) {
              if (x->task_ns != y->task_ns) return x->task_ns > y->task_ns;
              return x->name < y->name;
            });
  return ranked;
}

std::string pct_of(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return strprintf("%.1f",
                   100.0 * static_cast<double>(part) /
                       static_cast<double>(whole));
}

void render_profile_txt(std::ostream& os, const ProfDoc& doc) {
  os << "=== profile: " << doc.circuit << " (" << doc.engine << ", "
     << doc.tool << ") — " << doc.schema << " ===\n";
  os << "backend: " << doc.backend << ", wall: "
     << strprintf("%.6g", doc.wall_seconds) << " s, work: " << doc.evals
     << " evals, " << doc.patterns << " patterns\n\n";

  const auto ranked = ranked_phases(doc);
  os << "phases (by task-clock):\n";
  Table t({"rank", "phase", "subsystem", "calls", "task_ms", "task %",
           "cycles", "ipc", "miss %"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const ProfRow& r = *ranked[i];
    t.add_row({strprintf("%zu", i + 1), r.name, r.subsystem,
               fmt_u64(r.calls),
               strprintf("%.3f", static_cast<double>(r.task_ns) / 1e6),
               pct_of(r.task_ns, doc.total.task_ns),
               r.cycles == 0 ? "-" : fmt_u64(r.cycles),
               r.cycles == 0 || r.instructions == 0
                   ? "-"
                   : strprintf("%.2f", static_cast<double>(r.instructions) /
                                           static_cast<double>(r.cycles)),
               r.cache_refs == 0 ? "-"
                                 : pct_of(r.cache_misses, r.cache_refs)});
  }
  os << t.to_string() << "\n";

  os << "total: " << doc.total.calls << " spans, "
     << strprintf("%.3f", static_cast<double>(doc.total.task_ns) / 1e6)
     << " ms task-clock";
  if (doc.total.cycles > 0) os << ", " << doc.total.cycles << " cycles";
  os << "\n";
  if (!doc.derived.empty()) {
    os << "derived:\n";
    Table d({"rate", "value"});
    for (const auto& [name, value] : doc.derived)
      d.add_row({name, strprintf("%.6g", value)});
    os << d.to_string();
  }
}

void render_profile_json(std::ostream& os, const ProfDoc& doc) {
  os << "{\n  \"schema\": \"satpg.inspect_profile.v1\",\n";
  os << "  \"source\": {\"schema\": \"" << json_escape(doc.schema)
     << "\", \"tool\": \"" << json_escape(doc.tool) << "\", \"circuit\": \""
     << json_escape(doc.circuit) << "\", \"engine\": \""
     << json_escape(doc.engine) << "\"},\n";
  os << "  \"backend\": \"" << json_escape(doc.backend) << "\",\n";
  os << "  \"wall_seconds\": " << strprintf("%.6g", doc.wall_seconds)
     << ",\n";
  os << "  \"work\": {\"evals\": " << doc.evals << ", \"patterns\": "
     << doc.patterns << "},\n";
  os << "  \"phases\": [";
  const auto ranked = ranked_phases(doc);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const ProfRow& r = *ranked[i];
    os << (i == 0 ? "\n    " : ",\n    ") << "{\"phase\": \""
       << json_escape(r.name) << "\", \"subsystem\": \""
       << json_escape(r.subsystem) << "\", \"calls\": " << r.calls
       << ", \"task_clock_ns\": " << r.task_ns << ", \"cycles\": "
       << r.cycles << ", \"instructions\": " << r.instructions << "}";
  }
  os << "],\n";
  os << "  \"total\": {\"calls\": " << doc.total.calls
     << ", \"task_clock_ns\": " << doc.total.task_ns << ", \"cycles\": "
     << doc.total.cycles << "},\n";
  os << "  \"derived\": {";
  for (std::size_t i = 0; i < doc.derived.size(); ++i)
    os << (i == 0 ? "" : ", ") << "\"" << json_escape(doc.derived[i].first)
       << "\": " << strprintf("%.6g", doc.derived[i].second);
  os << "}\n}\n";
}

void render_fault_txt(std::ostream& os, const Doc& doc, const FaultRec& f) {
  os << "=== fault " << f.name << " (index " << f.index << ") — "
     << doc.circuit << " (" << doc.engine << ") ===\n";
  os << "status: " << f.status << ", evals: " << f.evals << ", backtracks: "
     << f.backtracks << ", invalid_frac: "
     << strprintf("%.4f", f.invalid_frac) << "\n";
  if (!f.sources.empty()) {
    os << "cube sources:\n";
    Table s(doc.is_events
                ? std::vector<std::string>{"from", "hits"}
                : std::vector<std::string>{"from", "epoch", "hits"});
    for (const FaultRec::Source& src : f.sources) {
      std::vector<std::string> row{src.from.empty() ? "(unknown)" : src.from};
      if (!doc.is_events) row.push_back(fmt_u64(src.epoch));
      row.push_back(fmt_u64(src.hits));
      s.add_row(std::move(row));
    }
    os << s.to_string();
  }
  if (doc.is_events) {
    os << "timeline (" << f.events.size() << " events, at = budget evals):\n";
    Table t({"at", "event", "detail"});
    for (const EventRec& e : f.events)
      t.add_row({fmt_u64(e.at), e.k, event_detail(e)});
    os << t.to_string();
  } else if (f.sources.empty()) {
    os << "(report record only — run with --events-json for a timeline)\n";
  }
}

void render_fault_json(std::ostream& os, const Doc& doc, const FaultRec& f) {
  os << "{\n  \"schema\": \"satpg.inspect.v1\",\n";
  os << "  \"fault\": {\"name\": \"" << json_escape(f.name)
     << "\", \"index\": " << f.index << ", \"status\": \""
     << json_escape(f.status) << "\", \"evals\": " << f.evals
     << ", \"backtracks\": " << f.backtracks << ", \"invalid_frac\": "
     << strprintf("%.17g", f.invalid_frac) << "},\n";
  os << "  \"cube_sources\": [";
  for (std::size_t i = 0; i < f.sources.size(); ++i)
    os << (i == 0 ? "" : ", ") << "{\"from\": \""
       << json_escape(f.sources[i].from) << "\", \"epoch\": "
       << f.sources[i].epoch << ", \"hits\": " << f.sources[i].hits << "}";
  os << "],\n  \"events\": [";
  for (std::size_t i = 0; i < f.events.size(); ++i)
    os << (i == 0 ? "\n    " : ",\n    ") << event_json(f.events[i]);
  os << "]\n}\n";
}

}  // namespace

bool inspect_source(std::ostream& os, const std::string& text,
                    const InspectOptions& opts, std::string* error) {
  if (opts.profile) {
    JsonValue root;
    std::string jerr;
    if (!json_parse(text, &root, &jerr)) {
      if (error) *error = jerr;
      return false;
    }
    ProfDoc doc;
    if (!parse_profile_doc(root, &doc, error)) return false;
    if (opts.json)
      render_profile_json(os, doc);
    else
      render_profile_txt(os, doc);
    return true;
  }
  Doc doc;
  if (!parse_doc(text, &doc, error)) return false;
  if (opts.memory) {
    if (!doc.has_memory) {
      if (error)
        *error = doc.is_events
                     ? "event logs carry no memory block; inspect a "
                       "satpg.atpg_run.v6 report"
                     : "report has no memory block (schema " + doc.schema +
                           "; need satpg.atpg_run.v6+)";
      return false;
    }
    if (opts.json)
      render_memory_json(os, doc, opts);
    else
      render_memory_txt(os, doc, opts);
    return true;
  }
  if (!opts.fault.empty()) {
    const FaultRec* f = find_fault(doc, opts.fault);
    if (f == nullptr) {
      if (error)
        *error = "fault \"" + opts.fault + "\" not found" +
                 (doc.is_events ? " (event logs record attempted faults only)"
                                : "");
      return false;
    }
    if (opts.json)
      render_fault_json(os, doc, *f);
    else
      render_fault_txt(os, doc, *f);
    return true;
  }
  if (opts.json)
    render_overview_json(os, doc, opts);
  else
    render_overview_txt(os, doc, opts);
  return true;
}

bool inspect_diff(std::ostream& os, const std::string& a_text,
                  const std::string& b_text, const InspectOptions& opts,
                  std::string* error) {
  Doc a, b;
  if (!parse_doc(a_text, &a, error)) return false;
  if (!parse_doc(b_text, &b, error)) return false;
  if (a.is_events || b.is_events) {
    if (error)
      *error = "inspect --diff compares atpg_run reports, not event logs";
    return false;
  }

  // Fault-efficiency milestones: cumulative evals spent when each
  // threshold is first reached, read off the fe_trace. "-" = never
  // reached.
  static constexpr double kMilestones[] = {25.0, 50.0, 75.0, 90.0, 95.0};
  const auto evals_to = [](const Doc& doc, double fe) -> std::string {
    for (const auto& [evals, value] : doc.fe_trace)
      if (value >= fe) return fmt_u64(evals);
    return "-";
  };

  // Per-fault divergence: joined on name, ranked by |evals delta| (status
  // changes first), name as tie-break.
  struct Divergence {
    const FaultRec* fa;
    const FaultRec* fb;
    std::uint64_t abs_delta;
  };
  std::map<std::string, const FaultRec*> by_name;
  for (const FaultRec& f : a.faults) by_name.emplace(f.name, &f);
  std::vector<Divergence> divergent;
  for (const FaultRec& fb : b.faults) {
    const auto it = by_name.find(fb.name);
    if (it == by_name.end()) continue;
    const FaultRec& fa = *it->second;
    if (fa.status == fb.status && fa.evals == fb.evals) continue;
    const std::uint64_t delta =
        fa.evals > fb.evals ? fa.evals - fb.evals : fb.evals - fa.evals;
    divergent.push_back({&fa, &fb, delta});
  }
  std::sort(divergent.begin(), divergent.end(),
            [](const Divergence& x, const Divergence& y) {
              const bool xs = x.fa->status != x.fb->status;
              const bool ys = y.fa->status != y.fb->status;
              if (xs != ys) return xs;
              if (x.abs_delta != y.abs_delta) return x.abs_delta > y.abs_delta;
              return x.fa->name < y.fa->name;
            });
  if (divergent.size() > opts.top) divergent.resize(opts.top);

  if (opts.json) {
    os << "{\n  \"schema\": \"satpg.inspect_diff.v1\",\n";
    os << "  \"baseline\": {\"circuit\": \"" << json_escape(a.circuit)
       << "\", \"engine\": \"" << json_escape(a.engine)
       << "\", \"coverage\": " << strprintf("%.17g", a.fault_coverage)
       << ", \"evals\": " << a.evals << "},\n";
    os << "  \"candidate\": {\"circuit\": \"" << json_escape(b.circuit)
       << "\", \"engine\": \"" << json_escape(b.engine)
       << "\", \"coverage\": " << strprintf("%.17g", b.fault_coverage)
       << ", \"evals\": " << b.evals << "},\n";
    os << "  \"milestones\": [";
    for (std::size_t i = 0; i < std::size(kMilestones); ++i) {
      const std::string ta = evals_to(a, kMilestones[i]);
      const std::string tb = evals_to(b, kMilestones[i]);
      os << (i == 0 ? "" : ", ") << "{\"fe\": "
         << strprintf("%.0f", kMilestones[i]) << ", \"baseline\": \"" << ta
         << "\", \"candidate\": \"" << tb << "\"}";
    }
    os << "],\n  \"divergent\": [";
    for (std::size_t i = 0; i < divergent.size(); ++i) {
      const Divergence& d = divergent[i];
      os << (i == 0 ? "\n    " : ",\n    ") << "{\"fault\": \""
         << json_escape(d.fa->name) << "\", \"status_a\": \""
         << json_escape(d.fa->status) << "\", \"status_b\": \""
         << json_escape(d.fb->status) << "\", \"evals_a\": " << d.fa->evals
         << ", \"evals_b\": " << d.fb->evals << "}";
    }
    os << "]\n}\n";
    return true;
  }

  os << "=== trajectory diff: " << a.circuit << " (" << a.engine << ") -> "
     << b.circuit << " (" << b.engine << ") ===\n";
  Table summary({"metric", "baseline", "candidate"});
  summary.add_row({"fault_coverage %", strprintf("%.2f", a.fault_coverage),
                   strprintf("%.2f", b.fault_coverage)});
  summary.add_row({"fault_efficiency %",
                   strprintf("%.2f", a.fault_efficiency),
                   strprintf("%.2f", b.fault_efficiency)});
  summary.add_row({"evals", fmt_u64(a.evals), fmt_u64(b.evals)});
  summary.add_row({"cube exports", fmt_u64(a.prov_exports),
                   fmt_u64(b.prov_exports)});
  summary.add_row({"cube import hits", fmt_u64(a.prov_hits),
                   fmt_u64(b.prov_hits)});
  os << summary.to_string() << "\n";

  os << "fault-efficiency milestones (evals to reach FE%):\n";
  Table m({"fe %", "baseline", "candidate"});
  for (const double fe : kMilestones)
    m.add_row({strprintf("%.0f", fe), evals_to(a, fe), evals_to(b, fe)});
  os << m.to_string() << "\n";

  if (divergent.empty()) {
    os << "per-fault trajectories identical\n";
  } else {
    os << "per-fault divergence (top " << divergent.size() << "):\n";
    Table t({"fault", "status", "evals a", "evals b"});
    for (const Divergence& d : divergent)
      t.add_row({d.fa->name,
                 d.fa->status == d.fb->status
                     ? d.fa->status
                     : d.fa->status + "->" + d.fb->status,
                 fmt_u64(d.fa->evals), fmt_u64(d.fb->evals)});
    os << t.to_string();
  }
  return true;
}

bool inspect_trend(std::ostream& os, const std::vector<TrendEntry>& entries,
                   const InspectOptions& opts, std::string* error) {
  struct TrendRow {
    std::string hash;
    Doc report;
    std::string config;
    const ProfDoc* profile = nullptr;  ///< joined sidecar, if any
  };

  // Pass 1: parse everything; last profile per configuration wins, so a
  // re-profiled run supersedes its older sidecar no matter where the
  // report sits in append order.
  std::vector<TrendRow> rows;
  std::map<std::string, ProfDoc> profiles;
  for (const TrendEntry& entry : entries) {
    JsonValue root;
    std::string jerr;
    if (!json_parse(entry.text, &root, &jerr)) {
      if (error) *error = "entry " + entry.hash + ": " + jerr;
      return false;
    }
    const std::string schema = root.str_or("schema", "");
    if (schema.rfind("satpg.profile.", 0) == 0) {
      ProfDoc p;
      if (!parse_profile_doc(root, &p, error)) return false;
      profiles[p.config] = std::move(p);
      continue;
    }
    if (schema.rfind("satpg.atpg_run.", 0) != 0) {
      if (error)
        *error = "entry " + entry.hash +
                 ": not an atpg_run report or profile (schema \"" + schema +
                 "\")";
      return false;
    }
    TrendRow row;
    row.hash = entry.hash;
    row.config = config_of(root);
    if (!parse_report_doc(root, &row.report, error)) {
      if (error) *error = "entry " + entry.hash + ": " + *error;
      return false;
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    if (error)
      *error = strprintf("no atpg_run reports among %zu archived documents",
                         entries.size());
    return false;
  }
  for (TrendRow& row : rows) {
    const auto it = profiles.find(row.config);
    if (it != profiles.end()) row.profile = &it->second;
  }

  // Joined rates come off the profile's derived block; "-" when no
  // sidecar matched or the backend could not drive the counter.
  const auto derived_of = [](const ProfDoc* p,
                             const char* key) -> std::string {
    if (p == nullptr) return "-";
    for (const auto& [name, value] : p->derived)
      if (name == key) return strprintf("%.6g", value);
    return "-";
  };

  if (opts.json) {
    os << "{\n  \"schema\": \"satpg.inspect_trend.v1\",\n";
    os << "  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const TrendRow& r = rows[i];
      os << (i == 0 ? "\n    " : ",\n    ") << "{\"hash\": \""
         << json_escape(r.hash) << "\", \"circuit\": \""
         << json_escape(r.report.circuit) << "\", \"engine\": \""
         << json_escape(r.report.engine) << "\", \"coverage\": "
         << strprintf("%.17g", r.report.fault_coverage)
         << ", \"evals\": " << r.report.evals << ", \"peak_bytes\": "
         << r.report.mem_total_peak;
      if (r.profile == nullptr) {
        os << ", \"profile\": null}";
      } else {
        os << ", \"profile\": {\"backend\": \""
           << json_escape(r.profile->backend)
           << "\", \"wall_seconds\": "
           << strprintf("%.6g", r.profile->wall_seconds);
        for (const char* key : {"evals_per_second", "cycles_per_eval"}) {
          const std::string v = derived_of(r.profile, key);
          if (v != "-") os << ", \"" << key << "\": " << v;
        }
        os << "}}";
      }
    }
    os << "\n  ]\n}\n";
    return true;
  }

  os << "=== trend: " << rows.size() << " archived run"
     << (rows.size() == 1 ? "" : "s") << ", " << profiles.size()
     << " profile sidecar" << (profiles.size() == 1 ? "" : "s")
     << " ===\n";
  Table t({"run", "hash", "circuit", "engine", "coverage %", "evals",
           "peak_bytes", "evals/s", "cycles/eval"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TrendRow& r = rows[i];
    t.add_row({strprintf("%zu", i + 1), r.hash.substr(0, 12),
               r.report.circuit, r.report.engine,
               strprintf("%.2f", r.report.fault_coverage),
               fmt_u64(r.report.evals),
               r.report.has_memory ? fmt_u64(r.report.mem_total_peak) : "-",
               derived_of(r.profile, "evals_per_second"),
               derived_of(r.profile, "cycles_per_eval")});
  }
  os << t.to_string();
  return true;
}

}  // namespace satpg
