// Circuit-suite construction for the study.
//
// Reconstructs the paper's circuit population: for each Table 2 row the
// original circuit (FSM × jedi-style encoder × synthesis script) and its
// retimed counterpart targeted at the paper's exact flip-flop count, plus
// the Table 7 ladder of partially-retimed versions of s510.jo.sr.
//
// Synthesis of the larger machines takes tens of seconds, so circuits are
// cached as .bench files in a cache directory (delay/area annotations are
// re-derived on load through the library annotator); delete the directory
// to force a rebuild.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "synth/synthesize.h"

namespace satpg {

/// One row of the paper's Table 2.
struct PairSpec {
  std::string fsm;       ///< suite machine name
  EncodeAlgo encode;
  ScriptKind script;
  int paper_orig_dffs;   ///< #DFF of the original circuit in the paper
  int paper_re_dffs;     ///< #DFF of the retimed circuit in the paper
  std::string name() const;             ///< e.g. "s510.jc.sd"
  std::string retimed_name() const;     ///< e.g. "s510.jc.sd.re"
};

/// The 16 circuit pairs of Table 2, with the paper's #DFF columns.
std::vector<PairSpec> table2_specs();

/// The Table 7 ladder: (suffix, target #DFF) for s510.jo.sr —
/// {".re.v1", 8}, {".re.v2", 16}, {".re.v3", 22}, {".re", 28}.
std::vector<std::pair<std::string, int>> table7_ladder();

struct SuiteOptions {
  std::string cache_dir = "circuits_cache";
  /// Scale factor on FSM sizes (1.0 = the paper's dimensions). Tests use
  /// smaller machines; benches default to full size.
  double fsm_scale = 1.0;
  std::uint64_t seed = 1;
};

/// Builds (and caches) suite circuits by paper-style name:
///   "<fsm>.<j?>.<s?>"            original circuit
///   "<fsm>.<j?>.<s?>.re"         retimed to the Table 2 #DFF target
///   "s510.jo.sr.re.v<k>"         Table 7 ladder versions
class Suite {
 public:
  explicit Suite(SuiteOptions opts = {});

  /// CHECK-fails on names outside the population above.
  Netlist circuit(const std::string& name);

  const SuiteOptions& options() const { return opts_; }

 private:
  std::optional<Netlist> load_cached(const std::string& name) const;
  void store_cached(const Netlist& nl) const;
  Netlist build(const std::string& name);
  Netlist build_original(const PairSpec& spec);

  SuiteOptions opts_;
};

}  // namespace satpg
