#include "harness/build_info.h"

#include <ostream>

#include "base/json.h"
#include "base/strutil.h"
#include "fsim/fsim.h"

namespace satpg {

namespace {

BuildInfo detect() {
  BuildInfo info;
#if defined(__clang__)
  info.compiler = "clang";
  info.compiler_version = strprintf("%d.%d.%d", __clang_major__,
                                    __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  info.compiler = "gcc";
  info.compiler_version =
      strprintf("%d.%d.%d", __GNUC__, __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
  info.compiler = "unknown";
  info.compiler_version = "unknown";
#endif

#if defined(SATPG_BUILD_TYPE)
  info.build_type = SATPG_BUILD_TYPE;
  if (info.build_type.empty()) info.build_type = "unknown";
#else
  info.build_type = "unknown";
#endif

  // GCC defines __SANITIZE_*__; clang exposes the same facts through
  // __has_feature.
  info.sanitizer = "none";
#if defined(__SANITIZE_ADDRESS__)
  info.sanitizer = "address";
#elif defined(__SANITIZE_THREAD__)
  info.sanitizer = "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  info.sanitizer = "address";
#elif __has_feature(thread_sanitizer)
  info.sanitizer = "thread";
#endif
#endif

  info.simd_compiled = simd_tier_name(fsim_wide_widest_compiled_tier());
  info.simd_dispatched =
      simd_tier_name(fsim_wide_resolve_tier(SimdTier::kAuto));
  return info;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = detect();
  return info;
}

void write_build_info_json(std::ostream& os, const BuildInfo& info,
                           int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "{\"compiler\": \"" << json_escape(info.compiler)
     << "\", \"compiler_version\": \"" << json_escape(info.compiler_version)
     << "\", \"build_type\": \"" << json_escape(info.build_type)
     << "\",\n" << pad << " \"sanitizer\": \"" << json_escape(info.sanitizer)
     << "\", \"simd_compiled\": \"" << json_escape(info.simd_compiled)
     << "\", \"simd_dispatched\": \"" << json_escape(info.simd_dispatched)
     << "\"}";
}

}  // namespace satpg
