#include "base/cpu.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace satpg {

namespace {

#if defined(__x86_64__) || defined(__i386__)

std::uint64_t read_xcr0() {
  std::uint32_t eax, edx;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv, old-assembler safe
                   : "=a"(eax), "=d"(edx)
                   : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures probe() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.sse2 = (edx >> 26) & 1;
  const bool osxsave = (ecx >> 27) & 1;
  const bool avx = (ecx >> 28) & 1;
  if (!osxsave || !avx) return f;
  const std::uint64_t xcr0 = read_xcr0();
  const bool ymm_ok = (xcr0 & 0x6) == 0x6;          // XMM + YMM saved
  const bool zmm_ok = (xcr0 & 0xe6) == 0xe6;        // + opmask, ZMM hi/lo
  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (!__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) return f;
  f.avx2 = ymm_ok && ((ebx7 >> 5) & 1);
  f.avx512 = zmm_ok && ((ebx7 >> 16) & 1);          // AVX-512F
  return f;
}

#else

CpuFeatures probe() { return {}; }

#endif

}  // namespace

const char* simd_tier_name(SimdTier t) {
  switch (t) {
    case SimdTier::kAuto:
      return "auto";
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "?";
}

bool simd_tier_from_width(unsigned width, SimdTier* out) {
  switch (width) {
    case 64:
      *out = SimdTier::kScalar;
      return true;
    case 128:
      *out = SimdTier::kSse2;
      return true;
    case 256:
      *out = SimdTier::kAvx2;
      return true;
    case 512:
      *out = SimdTier::kAvx512;
      return true;
    default:
      return false;
  }
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe();
  return f;
}

bool simd_tier_supported(SimdTier t) {
  const CpuFeatures& f = cpu_features();
  switch (t) {
    case SimdTier::kAuto:
    case SimdTier::kScalar:
      return true;
    case SimdTier::kSse2:
      return f.sse2;
    case SimdTier::kAvx2:
      return f.avx2;
    case SimdTier::kAvx512:
      return f.avx512;
  }
  return false;
}

SimdTier best_supported_tier() {
  const CpuFeatures& f = cpu_features();
  if (f.avx512) return SimdTier::kAvx512;
  if (f.avx2) return SimdTier::kAvx2;
  if (f.sse2) return SimdTier::kSse2;
  return SimdTier::kScalar;
}

namespace {

std::string probe_cpu_model() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned max_ext = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000000u, &max_ext, &ebx, &ecx, &edx) &&
      max_ext >= 0x80000004u) {
    char brand[49] = {};
    auto* words = reinterpret_cast<unsigned*>(brand);
    for (unsigned leaf = 0; leaf < 3; ++leaf)
      __get_cpuid(0x80000002u + leaf, &words[leaf * 4 + 0],
                  &words[leaf * 4 + 1], &words[leaf * 4 + 2],
                  &words[leaf * 4 + 3]);
    std::string name(brand);
    // The brand string is padded; trim the edges.
    while (!name.empty() && name.front() == ' ') name.erase(name.begin());
    while (!name.empty() && (name.back() == ' ' || name.back() == '\0'))
      name.pop_back();
    if (!name.empty()) return name;
  }
#endif
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[512];
    while (std::fgets(line, sizeof(line), f)) {
      if (std::strncmp(line, "model name", 10) != 0) continue;
      const char* colon = std::strchr(line, ':');
      if (colon == nullptr) continue;
      std::string name(colon + 1);
      while (!name.empty() && (name.front() == ' ' || name.front() == '\t'))
        name.erase(name.begin());
      while (!name.empty() && (name.back() == '\n' || name.back() == ' '))
        name.pop_back();
      std::fclose(f);
      if (!name.empty()) return name;
      break;
    }
    std::fclose(f);
  }
#endif
  return "unknown";
}

}  // namespace

const std::string& cpu_model_name() {
  static const std::string name = probe_cpu_model();
  return name;
}

bool simd_force_scalar_env() {
  static const bool forced = [] {
    const char* v = std::getenv("SATPG_FORCE_SCALAR");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  }();
  return forced;
}

}  // namespace satpg
