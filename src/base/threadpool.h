// Fixed-size worker thread pool.
//
// The pool is a plain task queue: submit() enqueues a closure, wait_all()
// blocks until every submitted task has finished. Determinism is the
// caller's job and is easy to get: give each task its own output slot
// (index-addressed arrays), never a shared accumulator, and merge slots in
// submission order after wait_all(). Nothing about scheduling order can
// then leak into results.
//
// ThreadPool::shared() is a process-wide pool sized to the hardware thread
// count, created on first use. It exists so hot paths that are entered many
// times per second (the fault simulator is called once per generated test)
// do not pay thread creation per call. It assumes a single orchestrating
// thread: wait_all() waits for *all* queued tasks, so two threads driving
// shared() concurrently would wait on each other's work (harmless, but
// slower); tasks themselves must not submit to the pool they run on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace satpg {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task. Tasks are dispatched to workers in submission order
  /// but may complete in any order.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running.
  void wait_all();

  /// Run fn(0) … fn(workers-1) concurrently and return when all are done.
  /// The calling thread executes fn(0) itself; fn(1..) go through the
  /// queue. This means `workers` may exceed num_threads() (extra calls
  /// just queue), and callers always make progress even on a 1-core pool.
  /// Same caveats as submit()/wait_all(): one orchestrating thread, and
  /// fn must not submit to this pool.
  void run_on_workers(unsigned workers,
                      const std::function<void(unsigned)>& fn);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static unsigned hardware_threads();

  /// Lazily-created process-wide pool with hardware_threads() workers.
  static ThreadPool& shared();

 private:
  void worker_loop(unsigned index);

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< tasks popped but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace satpg
