#include "base/telemetry_flags.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

#include "base/json.h"
#include "base/memstats.h"
#include "base/metrics.h"
#include "base/profiler.h"
#include "base/trace.h"

namespace satpg {

namespace {

const char* flag_value(const char* arg, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
}

}  // namespace

bool parse_positive_u64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v == 0) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_positive_double(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0' || !(v > 0.0)) return false;
  *out = v;
  return true;
}

bool TelemetryFlags::parse(const char* arg) {
  if (const char* v = flag_value(arg, "--metrics-json=")) {
    metrics_json = v;
    return true;
  }
  if (const char* v = flag_value(arg, "--events-json=")) {
    events_json = v;
    return true;
  }
  if (const char* v = flag_value(arg, "--trace-json=")) {
    trace_json = v;
    return true;
  }
  if (const char* v = flag_value(arg, "--heartbeat-json=")) {
    heartbeat_json = v;
    return true;
  }
  if (const char* v = flag_value(arg, "--heartbeat-interval-ms=")) {
    if (!parse_positive_u64(v, &heartbeat_interval_ms) && error.empty())
      error = arg;
    return true;
  }
  if (const char* v = flag_value(arg, "--profile-json=")) {
    profile_json = v;
    return true;
  }
  if (const char* v = flag_value(arg, "--profile-interval-ms=")) {
    if (!parse_positive_u64(v, &profile_interval_ms) && error.empty())
      error = arg;
    return true;
  }
  if (const char* v = flag_value(arg, "--profile-max-samples=")) {
    if (!parse_positive_u64(v, &profile_max_samples) && error.empty())
      error = arg;
    return true;
  }
  if (std::strcmp(arg, "--progress") == 0) {
    progress = true;
    return true;
  }
  return false;
}

void TelemetryFlags::arm() const {
  if (metrics_enabled()) {
    MetricsRegistry::global().reset();
    set_metrics_enabled(true);
    MemStatsRegistry::global().reset();
    set_memstats_enabled(true);
  }
  if (trace_enabled()) TraceRecorder::global().start();
  if (profile_enabled()) {
    Profiler::Options popts;
    popts.sample_interval_ms = profile_interval_ms;
    popts.max_samples = profile_max_samples;
    Profiler::global().start(popts);
  }
}

bool TelemetryFlags::finish_trace(std::ostream* info) const {
  if (!trace_enabled()) return true;
  TraceRecorder::global().stop();
  if (!TraceRecorder::global().write_json(trace_json)) {
    std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
    return false;
  }
  if (info)
    *info << "trace written    : " << trace_json << " ("
          << TraceRecorder::global().num_events() << " events)\n";
  return true;
}

bool TelemetryFlags::write_metrics_registry(const char* schema,
                                            const std::string& label,
                                            std::ostream* info) const {
  if (!metrics_enabled()) return true;
  set_metrics_enabled(false);
  std::ofstream os(metrics_json);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", metrics_json.c_str());
    return false;
  }
  os << "{\"schema\": \"" << json_escape(schema) << "\", \"bench\": \""
     << json_escape(label) << "\",\n \"metrics\": ";
  MetricsRegistry::global().write_json(os, 1);
  os << "\n}\n";
  if (!os.good()) {
    std::fprintf(stderr, "write failed: %s\n", metrics_json.c_str());
    return false;
  }
  if (info) *info << "metrics written  : " << metrics_json << "\n";
  return true;
}

}  // namespace satpg
