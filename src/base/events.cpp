#include "base/events.h"

#include "base/json.h"

namespace satpg {

const char* search_event_kind_name(SearchEventKind kind) {
  switch (kind) {
    case SearchEventKind::kWindowGrow: return "window_grow";
    case SearchEventKind::kJustifyEnter: return "justify_enter";
    case SearchEventKind::kJustifyLeave: return "justify_leave";
    case SearchEventKind::kRedundancyStart: return "redundancy_start";
    case SearchEventKind::kRedundancyVerdict: return "redundancy_verdict";
    case SearchEventKind::kBudgetAbort: return "budget_abort";
    case SearchEventKind::kExternalAbort: return "external_abort";
    case SearchEventKind::kRestart: return "restart";
    case SearchEventKind::kDbReduce: return "db_reduce";
    case SearchEventKind::kCubeExport: return "cube_export";
    case SearchEventKind::kCubeImport: return "cube_import";
    case SearchEventKind::kLearnHit: return "learn_hit";
  }
  return "unknown";
}

void append_event_json(std::string* out, const SearchEvent& e) {
  out->append("{\"k\": \"");
  out->append(search_event_kind_name(e.kind));
  out->append("\", \"at\": ");
  out->append(std::to_string(e.at));
  if (e.a != 0) {
    out->append(", \"a\": ");
    out->append(std::to_string(e.a));
  }
  if (e.b != 0) {
    out->append(", \"b\": ");
    out->append(std::to_string(e.b));
  }
  if (e.bytes != 0) {
    out->append(", \"bytes\": ");
    out->append(std::to_string(e.bytes));
  }
  if (!e.cube.empty()) {
    out->append(", \"cube\": \"");
    out->append(json_escape(e.cube));
    out->append("\"");
  }
  if (!e.src.empty()) {
    out->append(", \"src\": \"");
    out->append(json_escape(e.src));
    out->append("\"");
  }
  if (e.kind == SearchEventKind::kDbReduce) {
    out->append(", \"lbd\": [");
    for (std::size_t i = 0; i < e.lbd.size(); ++i) {
      if (i) out->append(", ");
      out->append(std::to_string(e.lbd[i]));
    }
    out->append("]");
  }
  out->append("}");
}

}  // namespace satpg
