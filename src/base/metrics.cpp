#include "base/metrics.h"

#include <ostream>
#include <sstream>

#include "base/strutil.h"

namespace satpg {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

namespace {

// Constant-initialized, so a thread that never registers reads the foreign
// sentinel without ever running a dynamic thread_local initializer.
thread_local unsigned t_telemetry_index = kForeignThreadIndex;

std::atomic<unsigned> g_next_worker_index{1};

// Dynamic initializers run on the main thread before main(), so this
// claims index 0 for it before any worker thread can exist.
[[maybe_unused]] const bool g_main_thread_claimed = [] {
  t_telemetry_index = kMainThreadIndex;
  return true;
}();

}  // namespace

unsigned telemetry_thread_index() { return t_telemetry_index; }

unsigned telemetry_register_worker() {
  if (t_telemetry_index == kForeignThreadIndex)
    t_telemetry_index =
        g_next_worker_index.fetch_add(1, std::memory_order_relaxed);
  return t_telemetry_index;
}

// ---- Counter ----------------------------------------------------------------

std::uint64_t MetricsRegistry::Counter::total() const {
  std::uint64_t t = 0;
  for (const auto& s : shards_) t += s.v.load(std::memory_order_relaxed);
  return t;
}

void MetricsRegistry::Counter::reset() {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// ---- Histogram --------------------------------------------------------------

void MetricsRegistry::Histogram::record_always(std::uint64_t v) {
  Shard& s = shards_[telemetry_thread_index() % kShards];
  s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = s.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !s.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t MetricsRegistry::Histogram::count() const {
  std::uint64_t t = 0;
  for (const auto& s : shards_) t += s.count.load(std::memory_order_relaxed);
  return t;
}

std::uint64_t MetricsRegistry::Histogram::sum() const {
  std::uint64_t t = 0;
  for (const auto& s : shards_) t += s.sum.load(std::memory_order_relaxed);
  return t;
}

std::uint64_t MetricsRegistry::Histogram::min() const {
  std::uint64_t m = UINT64_MAX;
  for (const auto& s : shards_) {
    const std::uint64_t v = s.min.load(std::memory_order_relaxed);
    if (v < m) m = v;
  }
  return m == UINT64_MAX ? 0 : m;
}

std::uint64_t MetricsRegistry::Histogram::max() const {
  std::uint64_t m = 0;
  for (const auto& s : shards_) {
    const std::uint64_t v = s.max.load(std::memory_order_relaxed);
    if (v > m) m = v;
  }
  return m;
}

std::uint64_t MetricsRegistry::Histogram::bucket(std::size_t b) const {
  std::uint64_t t = 0;
  for (const auto& s : shards_)
    t += s.buckets[b].load(std::memory_order_relaxed);
  return t;
}

void MetricsRegistry::Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(UINT64_MAX, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

// ---- registry ---------------------------------------------------------------

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad1 = pad + "  ";
  const std::string pad2 = pad1 + "  ";
  std::lock_guard<std::mutex> lock(mu_);

  os << "{\n" << pad1 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << pad2 << '"' << name
       << "\": " << c->total();
    first = false;
  }
  os << (first ? "" : "\n" + pad1) << "},\n";

  os << pad1 << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << pad2 << '"' << name << "\": "
       << strprintf("%.17g", g->value());
    first = false;
  }
  os << (first ? "" : "\n" + pad1) << "},\n";

  os << pad1 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << pad2 << '"' << name << "\": {"
       << "\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"min\": " << h->min() << ", \"max\": " << h->max()
       << ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      os << (bfirst ? "" : ", ") << '[' << b << ", " << n << ']';
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n" + pad1) << "}\n" << pad << "}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace satpg
