// Cycle-level profiling: hardware counters attributed to engine phases.
//
// The profiler answers "where do the cycles go" for the hot phases of
// every engine — the fsim good-machine pass and faulty batches, the wide
// kernel per dispatched SIMD tier, PODEM justify/backtrace, the CDCL
// solver's propagate/analyze/reduce, and the parallel driver's merge
// barrier — with per-worker lanes so the attribution survives any
// `--threads` value.
//
// Like the monitor (DESIGN.md §7) and the trace recorder, everything here
// lives on the wall-clock plane: counter readings are nondeterministic by
// nature and may only ever reach the `satpg.profile.v1` sidecar
// (`--profile-json`), never the deterministic metrics/events artifacts.
// While disabled, a ProfileSpan costs one relaxed load in the constructor
// and nothing in the destructor — the same contract as TraceSpan — so the
// spans can sit on per-decision paths without perturbing unprofiled runs.
//
// Backend ladder (probed once per start()):
//   * perf_event  per-thread perf_event_open counter group (cycles,
//                 instructions, cache-references, cache-misses,
//                 branch-misses) plus CLOCK_THREAD_CPUTIME_ID task-clock.
//   * fallback    CLOCK_THREAD_CPUTIME_ID task-clock only — containers
//                 with perf_event_paranoid locked down, and non-Linux.
// `SATPG_PROFILE_BACKEND=fallback` pins the fallback (CI runners mask
// perf_event); `=perf` requests the perf backend but still degrades to
// the fallback when the syscall is refused — arming the profiler must
// never fail a run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "base/cpu.h"

namespace satpg {

/// One profiled phase. Enum order is sorted-name order (like
/// MemSubsystem), so iterating the enum emits sorted JSON keys.
enum class ProfPhase : std::uint8_t {
  kAtpgMerge = 0,         ///< parallel driver merge barrier
  kCdclAnalyze,           ///< CDCL conflict analysis (1UIP)
  kCdclPropagate,         ///< CDCL unit propagation
  kCdclReduceDb,          ///< CDCL learned-clause DB reduction
  kFsimBatch,             ///< 64-slot faulty-batch simulation
  kFsimGood,              ///< 64-slot good-machine pass
  kFsimWideGood,          ///< wide engine group good-machine pass
  kFsimWideKernelAvx2,    ///< wide kernel, avx2 tier
  kFsimWideKernelAvx512,  ///< wide kernel, avx512 tier
  kFsimWideKernelScalar,  ///< wide kernel, scalar tier
  kFsimWideKernelSse2,    ///< wide kernel, sse2 tier
  kPodemBacktrace,        ///< PODEM objective backtrace
  kPodemJustify,          ///< multi-frame state justification (depth 0)
};
inline constexpr std::size_t kNumProfPhases = 13;

/// "atpg.merge", "cdcl.propagate", ... — stable JSON keys.
const char* prof_phase_name(ProfPhase p);
/// Owning subsystem for rollups: "atpg", "cdcl", "fsim", "podem".
const char* prof_phase_subsystem(ProfPhase p);
/// The wide-kernel phase for a resolved (non-auto) SIMD tier.
ProfPhase prof_phase_for_wide_kernel(SimdTier tier);

/// Per-span counter slots. kTaskClockNs is sampled from
/// CLOCK_THREAD_CPUTIME_ID under both backends; the rest only move under
/// the perf_event backend.
enum class ProfCounter : std::uint8_t {
  kTaskClockNs = 0,
  kCycles,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchMisses,
};
inline constexpr std::size_t kNumProfCounters = 6;
const char* prof_counter_name(ProfCounter c);

enum class ProfBackend : std::uint8_t { kOff = 0, kPerfEvent, kFallback };
const char* prof_backend_name(ProfBackend b);

namespace detail {
extern std::atomic<bool> g_profiler_enabled;
}

inline bool profiler_enabled() {
  return detail::g_profiler_enabled.load(std::memory_order_relaxed);
}

/// Folded counters for one phase (one lane, or a fold across lanes).
struct ProfPhaseTotals {
  std::uint64_t calls = 0;
  std::uint64_t counters[kNumProfCounters] = {};

  void add(const ProfPhaseTotals& o) {
    calls += o.calls;
    for (std::size_t c = 0; c < kNumProfCounters; ++c)
      counters[c] += o.counters[c];
  }
  std::uint64_t counter(ProfCounter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
};

/// Plain copy of the profiler state taken at stop()/snapshot() time.
struct ProfSnapshot {
  struct Lane {
    unsigned lane = 0;
    ProfPhaseTotals phases[kNumProfPhases];
  };
  struct Sample {
    std::uint64_t at_ms = 0;         ///< wall offset from start()
    std::uint64_t task_clock_ns = 0; ///< cross-lane total at the sample
    std::uint64_t cycles = 0;
  };

  ProfBackend backend = ProfBackend::kOff;
  double wall_seconds = 0.0;
  std::vector<Lane> lanes;  ///< lanes with activity, ascending lane id
  std::vector<Sample> samples;
  std::uint64_t samples_dropped = 0;

  /// Fold of one phase across all lanes.
  ProfPhaseTotals phase(ProfPhase p) const;
  /// Fold of every phase across all lanes.
  ProfPhaseTotals total() const;
};

/// Process-wide profiler. start()/stop() bracket the measured work;
/// ProfileSpans accumulate into fixed per-worker lanes (indexed by
/// telemetry_thread_index(); threads past the lane cap share the last
/// lane). Not reentrant: one start()/stop() pair at a time.
class Profiler {
 public:
  static constexpr std::size_t kMaxLanes = 64;

  struct Options {
    /// Sampler period; 0 = no sampler thread. The sampler appends
    /// cross-lane totals to the snapshot's timeline on the wall clock.
    std::uint64_t sample_interval_ms = 0;
    /// Timeline cap; samples past it are counted as dropped.
    std::uint64_t max_samples = 4096;
  };

  /// Reset lanes, probe the backend (honoring SATPG_PROFILE_BACKEND),
  /// optionally spawn the sampler, and enable span recording.
  void start(const Options& opts);
  void start() { start(Options()); }
  /// Disable recording, join the sampler, and freeze wall_seconds.
  void stop();

  /// Backend selected by the last start() (kOff before any start()).
  ProfBackend backend() const {
    return static_cast<ProfBackend>(
        backend_.load(std::memory_order_relaxed));
  }

  /// Copy of everything recorded since the last start().
  ProfSnapshot snapshot() const;

  static Profiler& global();

  // --- ProfileSpan internals -----------------------------------------------
  /// Read the calling thread's counters into vals[kNumProfCounters].
  void read_thread_counters(std::uint64_t* vals);
  /// Accumulate one completed span's deltas into the caller's lane.
  void accumulate(ProfPhase phase, const std::uint64_t* deltas);

 private:
  struct alignas(64) Lane {
    struct Phase {
      std::atomic<std::uint64_t> calls{0};
      std::atomic<std::uint64_t> counters[kNumProfCounters];
    };
    Phase phases[kNumProfPhases];
  };

  void sampler_loop(std::uint64_t interval_ms, std::uint64_t max_samples);

  Lane lanes_[kMaxLanes];
  std::atomic<std::uint8_t> backend_{0};
  std::chrono::steady_clock::time_point epoch_;
  double wall_seconds_ = 0.0;

  mutable std::mutex samples_mu_;
  std::vector<ProfSnapshot::Sample> samples_;
  std::uint64_t samples_dropped_ = 0;

  std::thread sampler_;
  std::atomic<bool> sampler_stop_{false};
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
};

/// RAII phase span: reads the thread's counters at construction and
/// destruction and charges the delta to the phase on the calling thread's
/// lane. One relaxed load and an early return while the profiler is off.
class ProfileSpan {
 public:
  explicit ProfileSpan(ProfPhase phase) : active_(profiler_enabled()) {
    if (active_) {
      phase_ = phase;
      Profiler::global().read_thread_counters(at_);
    }
  }
  ~ProfileSpan() {
    if (active_) end();
  }
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  void end();

  ProfPhase phase_{};
  bool active_;
  std::uint64_t at_[kNumProfCounters];
};

}  // namespace satpg
