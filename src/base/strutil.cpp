#include "base/strutil.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace satpg {

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j])))
      ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string format_density(double v) {
  if (v >= 0.01) return strprintf("%.2f", v);
  if (v <= 0.0) return "0";
  const int exp = static_cast<int>(std::floor(std::log10(v)));
  const double mant = v / std::pow(10.0, exp);
  return strprintf("%.1fE%d", mant, exp);
}

std::string format_count(double v) {
  if (v < 100000.0) return strprintf("%.0f", v);
  const int exp = static_cast<int>(std::floor(std::log10(v)));
  const double mant = v / std::pow(10.0, exp);
  return strprintf("%.2fE%d", mant, exp);
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string fnv1a64_hex(std::string_view s) {
  return strprintf("%016llx",
                   static_cast<unsigned long long>(fnv1a64(s)));
}

}  // namespace satpg
