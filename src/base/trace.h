// Phase-scoped tracing: RAII spans emitting Chrome trace_event JSON.
//
// The recorder buffers complete ("X") and counter ("C") events with
// per-thread lanes (tid = `telemetry_thread_index()`), and writes the
// Trace Event Format JSON that chrome://tracing and Perfetto load
// directly. Enabled explicitly by `--trace-json=FILE`; while disabled a
// TraceSpan costs one relaxed load in the constructor and nothing in the
// destructor.
//
// Unlike the metrics registry (base/metrics.h), everything here is
// wall-clock and therefore nondeterministic by design — timing belongs in
// the trace, never in the metrics JSON (DESIGN.md §5).
//
// Event names and categories must be string literals (or otherwise outlive
// the recorder): events store the pointers, not copies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace satpg {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}

inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

class TraceRecorder {
 public:
  /// Buffered-event cap; events beyond it are counted and dropped so a
  /// runaway phase cannot exhaust memory. The drop count is surfaced as a
  /// `trace_events_dropped` metadata event in the written JSON and as the
  /// `trace_events_dropped` counter in the metrics registry (recorded at
  /// stop()).
  static constexpr std::size_t kMaxEvents = 1u << 22;

  /// Clear the buffer, re-arm the epoch, and enable recording.
  void start();
  /// Disable recording; buffered events are kept for write_json().
  void stop();

  /// Microseconds since start()'s epoch.
  std::uint64_t now_us() const;

  /// Complete event ("X"): a [ts, ts+dur] slice on lane `tid`.
  void add_complete(const char* name, const char* cat, unsigned tid,
                    std::uint64_t ts_us, std::uint64_t dur_us);
  /// Counter event ("C"): a sampled value series (e.g. queue depth).
  void add_counter(const char* name, std::uint64_t ts_us,
                   std::uint64_t value);

  /// Human-readable lane name shown by the viewer; callers register their
  /// thread once (cheap, works before start()).
  void set_thread_name(unsigned tid, const std::string& name);

  std::size_t num_events() const;
  std::size_t num_dropped() const;

  /// Write the buffered events as Trace Event Format JSON. Returns false
  /// when the file cannot be opened.
  bool write_json(const std::string& path) const;

  static TraceRecorder& global();

 private:
  struct Event {
    const char* name;
    const char* cat;  ///< nullptr for counter events
    unsigned tid;
    std::uint64_t ts;
    std::uint64_t dur;    ///< complete events only
    std::uint64_t value;  ///< counter events only
    char type;            ///< 'X' or 'C'
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<unsigned, std::string> thread_names_;
  std::size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// RAII phase timer: records a complete event over its lifetime on the
/// calling thread's lane. `name`/`cat` must be string literals.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "phase");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_us_ = 0;
  bool active_;
};

}  // namespace satpg
