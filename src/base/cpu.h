// CPU feature detection and SIMD tier selection for the wide fault
// simulator (DESIGN.md §8).
//
// A SimdTier names one physical kernel width. Detection runs CPUID (and
// XGETBV, to confirm the OS saves the wider register files) exactly once;
// every later query reads the cached result. The `SATPG_FORCE_SCALAR`
// environment variable caps resolution at kScalar regardless of hardware
// or explicit requests — it exists so CI legs and bug reports can pin the
// portable code path — and is likewise read once per process.
#pragma once

#include <cstdint>
#include <string>

namespace satpg {

/// Physical kernel widths for the wide (pattern-parallel) fault simulator.
/// All tiers compute the same fixed-width logical word, so results and
/// metrics are identical across tiers by construction; the tier only
/// selects which instruction set crunches it.
enum class SimdTier : std::uint8_t {
  kAuto = 0,  ///< widest tier that is both compiled in and CPU-supported
  kScalar,    ///< portable uint64_t[] loops
  kSse2,      ///< 128-bit vectors
  kAvx2,      ///< 256-bit vectors
  kAvx512,    ///< 512-bit vectors (AVX-512F)
};

/// "auto", "scalar", "sse2", "avx2", "avx512".
const char* simd_tier_name(SimdTier t);

/// Maps a lane-group bit width (128/256/512) to its tier; false on any
/// other width. 64 maps to kScalar for symmetry with --width=64.
bool simd_tier_from_width(unsigned width, SimdTier* out);

struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;    ///< AVX2 and OS YMM state support
  bool avx512 = false;  ///< AVX-512F and OS ZMM/opmask state support
};

/// Cached one-time CPUID/XGETBV probe of the running machine.
const CpuFeatures& cpu_features();

/// True when the hardware (and OS register-state support) can run `t`.
/// kScalar and kAuto are always runnable.
bool simd_tier_supported(SimdTier t);

/// Widest hardware-supported tier (ignores SATPG_FORCE_SCALAR and what
/// kernels were compiled in).
SimdTier best_supported_tier();

/// Cached one-time read of SATPG_FORCE_SCALAR: set and not "0" => true.
bool simd_force_scalar_env();

/// Marketing name of the running CPU ("AMD EPYC 7B13", ...), read once
/// from the CPUID brand string (x86) or /proc/cpuinfo; "unknown" when
/// neither works. Wall-plane provenance only — it names the machine, so
/// it may appear in bench/profile artifacts but never in deterministic
/// reports.
const std::string& cpu_model_name();

}  // namespace satpg
