// Dynamic bit vector.
//
// Used for state codes, cube masks, and visited-state sets. Word-based with
// the usual bulk operations; comparisons define a total order so BitVec can
// key ordered containers, and hashing supports unordered sets of states.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/check.h"

namespace satpg {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false);

  /// Parse from a string of '0'/'1', most-significant (index nbits-1) first —
  /// the conventional way state codes are written.
  static BitVec from_string(const std::string& s);

  /// Construct the nbits-wide binary code of `value` (bit i = value>>i & 1).
  static BitVec from_value(std::size_t nbits, std::uint64_t value);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const {
    SATPG_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    SATPG_DCHECK(i < nbits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void resize(std::size_t nbits, bool value = false);
  void clear_all();
  void set_all();

  std::size_t count() const;  ///< population count
  bool any() const;
  bool none() const { return !any(); }

  /// First set bit index, or size() if none.
  std::size_t find_first() const;
  /// First set bit index > i, or size() if none.
  std::size_t find_next(std::size_t i) const;

  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);
  BitVec operator~() const;

  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& o) const;
  bool operator!=(const BitVec& o) const { return !(*this == o); }
  bool operator<(const BitVec& o) const;  ///< lexicographic on (size, words)

  /// True if every set bit of this is also set in o.
  bool is_subset_of(const BitVec& o) const;

  /// Interpret as an unsigned integer (requires size() <= 64).
  std::uint64_t to_u64() const;

  /// Render as '0'/'1' string, most-significant (index size()-1) first.
  std::string to_string() const;

  std::size_t hash() const;

 private:
  void trim();  ///< zero bits beyond nbits_ in the last word

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitVecHash {
  std::size_t operator()(const BitVec& v) const { return v.hash(); }
};

}  // namespace satpg
