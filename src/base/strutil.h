// Small string helpers shared by the parsers and table printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace satpg {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Format a double in the paper's scientific style for tiny values
/// (e.g. "2.0E-4") and fixed style for values >= 0.01 (e.g. "0.84").
std::string format_density(double v);

/// Format a count in scientific style when large (e.g. "5.24E5"), plain
/// integer otherwise — matches the "total #states" column of the paper.
std::string format_count(double v);

/// FNV-1a 64-bit hash. Stable across platforms/runs (unlike std::hash), so
/// it can key on-disk stores — the run archive's content hashes use it.
std::uint64_t fnv1a64(std::string_view s);

/// fnv1a64 rendered as 16 lowercase hex digits.
std::string fnv1a64_hex(std::string_view s);

}  // namespace satpg
