// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the library (synthetic FSM generation, random
// test vectors, tie-breaking in heuristics) flows through Rng so that whole
// experiments are reproducible from a single seed. xoshiro256** seeded via
// splitmix64, per the reference implementations by Blackman & Vigna.
#pragma once

#include <cstdint>

#include "base/check.h"

namespace satpg {

/// splitmix64 step; used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedu) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses rejection to avoid
  /// modulo bias (matters for small bounds used in tie-breaking).
  std::uint64_t next_below(std::uint64_t bound) {
    SATPG_DCHECK(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform int in [lo, hi] inclusive.
  int next_int(int lo, int hi) {
    SATPG_DCHECK(lo <= hi);
    return lo + static_cast<int>(next_below(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool next_bool() { return (next_u64() >> 63) != 0; }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent child stream (for per-circuit determinism that
  /// does not depend on iteration order elsewhere).
  Rng fork(std::uint64_t salt) {
    std::uint64_t s = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(s));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace satpg
