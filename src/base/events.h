// Search-trajectory flight recorder: typed per-fault search events.
//
// Every engine can emit a stream of SearchEvents describing how a fault's
// search unfolded — window growths, justification enter/leave, redundancy
// proofs, budget aborts, CDCL restarts/DB reductions, cube export/import.
// Event content is strictly wall-clock free: the only "time" axis is `at`,
// a snapshot of the fault's cumulative PodemBudget eval counter, which is a
// pure function of the search path. After the parallel driver's
// deterministic merge the full stream is therefore byte-identical at any
// --threads, the same contract --metrics-json honours (DESIGN.md §10).
// Wall-clock observations stay confined to trace/heartbeat.
//
// Recording is opt-in per engine (AtpgEngine::set_record_events): when off,
// the only cost on the search path is one branch on a plain bool — the same
// near-zero-overhead discipline as src/base/metrics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace satpg {

/// LBD histogram buckets for kDbReduce snapshots: bucket i counts live
/// learned clauses with lbd == i, the last bucket collects lbd >= 7.
constexpr std::size_t kLbdHistBuckets = 8;

enum class SearchEventKind : std::uint8_t {
  kWindowGrow,        ///< a = new frame count
  kJustifyEnter,      ///< a = depth, cube = target state key
  kJustifyLeave,      ///< a = depth, b = 0 fail / 1 ok / 2 proven-invalid
  kRedundancyStart,   ///< a = frame count of the exhausted window
  kRedundancyVerdict, ///< b = 1 redundant / 0 not proven
  kBudgetAbort,       ///< a = 1 evals exhausted, b = 1 backtracks exhausted
  kExternalAbort,     ///< deadline/watchdog abort (wall-tainted runs only)
  kRestart,           ///< a = restart ordinal (CDCL)
  kDbReduce,          ///< a = clauses killed, b = live after; bytes = reclaimed; lbd = pre-reduce histogram
  kCubeExport,        ///< cube = proven-unreachable state cube published for sharing; bytes = cube footprint
  kCubeImport,        ///< cube, src = exporting fault, a = export epoch (0 = unit-local)
  kLearnHit,          ///< a = depth, b = 1 ok-cache / 0 fail-cache, cube, src = exporter
};

const char* search_event_kind_name(SearchEventKind kind);

/// One event. `at` is the deterministic clock: the fault's cumulative
/// budget evals at emission time.
struct SearchEvent {
  SearchEventKind kind = SearchEventKind::kWindowGrow;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::uint64_t at = 0;
  std::uint64_t bytes = 0;  ///< accounted bytes (memstats), 0 = not applicable
  std::string cube;  ///< state-cube key text, when applicable
  std::string src;   ///< exporting fault name, when applicable
  std::array<std::uint32_t, kLbdHistBuckets> lbd{};  ///< kDbReduce only
};

/// Append one NDJSON object (no trailing newline) rendering `e` to *out.
/// Zero-valued optional fields are omitted so the stream stays compact.
void append_event_json(std::string* out, const SearchEvent& e);

/// Cube-sharing provenance: one (exporter, epoch) source a fault benefited
/// from, with the number of blocking-clause imports / learned-cache hits
/// attributed to it. epoch 0 means the cube was unit-local (proven by an
/// earlier fault on the same worker engine, not yet published).
struct CubeSource {
  std::string exporter;
  std::uint32_t epoch = 0;
  std::uint64_t hits = 0;
};

using SearchEventList = std::vector<SearchEvent>;

}  // namespace satpg
