// Minimal JSON utilities for telemetry output.
//
// This is deliberately not a full JSON library: the repo only needs to
// (a) escape strings it embeds in hand-written JSON reports and
// (b) validate that the reports it just wrote actually parse, for the
// smoke tests. Numbers are accepted in full RFC 8259 syntax; no value
// tree is built.
#pragma once

#include <string>

namespace satpg {

/// Escape a string for embedding between double quotes in JSON output.
std::string json_escape(const std::string& s);

/// Strict whole-document validation: true iff `text` is exactly one JSON
/// value (plus surrounding whitespace). On failure, *error (if non-null)
/// gets a one-line message with the byte offset.
bool json_valid(const std::string& text, std::string* error = nullptr);

}  // namespace satpg
