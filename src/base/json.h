// Minimal JSON utilities for telemetry output and run-report tooling.
//
// This is deliberately not a full JSON library. The repo needs to
// (a) escape strings it embeds in hand-written JSON reports,
// (b) validate that the reports it just wrote actually parse, and
// (c) parse its own atpg_run reports back into a value tree for the run
//     archive and differ (harness/archive, harness/diff).
// Numbers are accepted in full RFC 8259 syntax (NaN/Infinity are rejected
// by the grammar) and parsed as double. Both the validator and the parser
// refuse documents nested deeper than kJsonMaxDepth rather than recursing
// without bound.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace satpg {

/// Containers/recursion deeper than this fail validation and parsing.
inline constexpr std::size_t kJsonMaxDepth = 256;

/// Escape a string for embedding between double quotes in JSON output.
std::string json_escape(const std::string& s);

/// Strict whole-document validation: true iff `text` is exactly one JSON
/// value (plus surrounding whitespace). On failure, *error (if non-null)
/// gets a one-line message with the byte offset.
bool json_valid(const std::string& text, std::string* error = nullptr);

/// Parsed JSON value. Objects keep their members in document order (the
/// reports this repo writes are deterministic, so order is meaningful for
/// byte-stable re-rendering); lookup is linear, which is fine at report
/// sizes. Strings are decoded: escape sequences are resolved and \uXXXX
/// becomes UTF-8 (surrogate pairs combined; a lone surrogate decodes to
/// U+FFFD).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// First member named `key`, or nullptr (also for non-objects).
  const JsonValue* find(const std::string& key) const;

  // Typed conveniences with defaults — the differ reads both v1 and v2
  // reports, so missing fields must degrade gracefully.
  double num_or(const std::string& key, double dflt) const;
  std::uint64_t uint_or(const std::string& key, std::uint64_t dflt) const;
  std::string str_or(const std::string& key, const std::string& dflt) const;
  bool bool_or(const std::string& key, bool dflt) const;

  // Construction (used by the parser; tests may build values directly).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Strict whole-document parse of exactly one JSON value. Returns false
/// (with a one-line byte-offset message in *error when non-null) on any
/// syntax error, trailing bytes, or nesting beyond kJsonMaxDepth.
bool json_parse(const std::string& text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace satpg
