#include "base/monitor.h"

#include <algorithm>
#include <cstdio>

namespace satpg {

RunMonitor::RunMonitor(MonitorSource* source, const RunMonitorOptions& opts)
    : source_(source), opts_(opts) {}

RunMonitor::~RunMonitor() { stop(); }

bool RunMonitor::start() {
  if (running_ || !opts_.enabled() || source_ == nullptr) return true;
  if (!opts_.heartbeat_json.empty()) {
    out_.open(opts_.heartbeat_json, std::ios::trunc);
    if (!out_) {
      std::fprintf(stderr, "cannot write %s\n",
                   opts_.heartbeat_json.c_str());
      return false;
    }
  }
  t0_ = std::chrono::steady_clock::now();
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
  return true;
}

void RunMonitor::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final sample from the caller's thread: the run is quiescent now, so
  // this closes the stream with a complete end-of-run heartbeat.
  sample_once();
  if (out_.is_open()) out_.close();
  running_ = false;
}

void RunMonitor::loop() {
  const auto interval =
      std::chrono::milliseconds(std::max<std::uint64_t>(1, opts_.interval_ms));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; }))
      return;  // final sample happens in stop(), after the join
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

void RunMonitor::sample_once() {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  const std::uint64_t seq = samples_.fetch_add(1, std::memory_order_relaxed);
  if (out_.is_open()) {
    out_ << source_->heartbeat_json(seq, elapsed) << '\n';
    out_.flush();
  }
  if (opts_.progress) {
    const std::string line = source_->progress_line(elapsed);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace satpg
