#include "base/logging.h"

#include <cstdio>
#include <mutex>

#include "base/metrics.h"

namespace satpg {

namespace {
LogLevel g_level = LogLevel::kWarn;

// Serializes emission: SATPG_LOG is used from ThreadPool workers and a
// bare fprintf can interleave mid-line on some libcs.
std::mutex g_log_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
std::string log_thread_tag(unsigned telemetry_index) {
  if (telemetry_index == kForeignThreadIndex) return "t?";
  return "t" + std::to_string(telemetry_index);
}

void log_emit(LogLevel level, const std::string& msg) {
  const std::string tag = log_thread_tag(telemetry_thread_index());
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[%s %s] %s\n", level_name(level), tag.c_str(),
               msg.c_str());
}
}  // namespace detail

}  // namespace satpg
