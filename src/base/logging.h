// Minimal leveled logger.
//
// The experiment harness produces its primary output through explicit table
// printers; the logger is for diagnostics (progress, warnings) and is quiet
// by default so bench output stays machine-comparable.
#pragma once

#include <sstream>
#include <string>

namespace satpg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
/// Log tag for a telemetry thread index: "t0", "t3", ... for registered
/// threads, "t?" for the foreign-thread sentinel.
std::string log_thread_tag(unsigned telemetry_index);
}  // namespace detail

/// Stream-style log statement: LOG(kInfo) << "synthesized " << n << " gates";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::log_emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace satpg

#define SATPG_LOG(level) ::satpg::LogLine(::satpg::LogLevel::level)
