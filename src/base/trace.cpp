#include "base/trace.h"

#include <cstdio>
#include <set>

#include "base/metrics.h"

namespace satpg {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}

void TraceRecorder::start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  detail::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::stop() {
  detail::g_tracing_enabled.store(false, std::memory_order_relaxed);
  // Surface the overflow count instead of silently swallowing it: a
  // `trace_events_dropped` counter in the metrics JSON (normally 0 — the
  // buffer cap is far above any real run) plus the metadata event
  // write_json() emits. Only traced runs register the counter, so untraced
  // metrics reports are unaffected.
  MetricsRegistry::global()
      .counter("trace_events_dropped")
      .add(num_dropped());
}

std::uint64_t TraceRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::add_complete(const char* name, const char* cat,
                                 unsigned tid, std::uint64_t ts_us,
                                 std::uint64_t dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({name, cat, tid, ts_us, dur_us, 0, 'X'});
}

void TraceRecorder::add_counter(const char* name, std::uint64_t ts_us,
                                std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({name, nullptr, 0, ts_us, 0, value, 'C'});
}

void TraceRecorder::set_thread_name(unsigned tid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid] = name;
}

std::size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceRecorder::num_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool TraceRecorder::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::lock_guard<std::mutex> lock(mu_);

  std::fprintf(f, "{\"displayTimeUnit\": \"ms\",\n");
  std::fprintf(f, " \"traceEvents\": [\n");

  bool first = true;
  auto sep = [&] {
    std::fputs(first ? "  " : ",\n  ", f);
    first = false;
  };

  // Buffer-overflow accounting as a proper metadata event (visible in the
  // viewer's metadata pane) rather than a bespoke top-level key.
  sep();
  std::fprintf(f,
               "{\"name\": \"trace_events_dropped\", \"ph\": \"M\", "
               "\"pid\": 1, \"tid\": 0, \"args\": {\"dropped\": %zu}}",
               dropped_);

  // Lane-name metadata: explicit registrations plus a default for every
  // lane that carried events.
  std::set<unsigned> tids;
  for (const auto& e : events_)
    if (e.type == 'X') tids.insert(e.tid);
  for (const auto& [tid, name] : thread_names_) {
    sep();
    std::fprintf(f,
                 "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                 "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                 tid, name.c_str());
    tids.erase(tid);
  }
  for (unsigned tid : tids) {
    sep();
    const std::string name =
        tid == 0 ? "main" : "thread-" + std::to_string(tid);
    std::fprintf(f,
                 "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                 "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                 tid, name.c_str());
  }

  for (const auto& e : events_) {
    sep();
    if (e.type == 'X') {
      std::fprintf(f,
                   "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                   "\"pid\": 1, \"tid\": %u, \"ts\": %llu, \"dur\": %llu}",
                   e.name, e.cat, e.tid,
                   static_cast<unsigned long long>(e.ts),
                   static_cast<unsigned long long>(e.dur));
    } else {
      std::fprintf(f,
                   "{\"name\": \"%s\", \"ph\": \"C\", \"pid\": 1, "
                   "\"ts\": %llu, \"args\": {\"value\": %llu}}",
                   e.name, static_cast<unsigned long long>(e.ts),
                   static_cast<unsigned long long>(e.value));
    }
  }
  std::fprintf(f, "\n ]}\n");
  std::fclose(f);
  return true;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

TraceSpan::TraceSpan(const char* name, const char* cat)
    : name_(name), cat_(cat), active_(tracing_enabled()) {
  if (active_) start_us_ = TraceRecorder::global().now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceRecorder& rec = TraceRecorder::global();
  const std::uint64_t end = rec.now_us();
  rec.add_complete(name_, cat_, telemetry_thread_index(), start_us_,
                   end - start_us_);
}

}  // namespace satpg
