// Shared command-line plumbing for the telemetry subsystem.
//
// Every tool that can run an engine accepts the same flag family:
//   --metrics-json=FILE          deterministic structured metrics dump
//   --events-json=FILE           deterministic flight-recorder event log
//   --trace-json=FILE            Chrome trace_event timeline (wall-clock)
//   --heartbeat-json=FILE        live NDJSON heartbeat stream (wall-clock)
//   --heartbeat-interval-ms=N    monitor sampling period (default 500)
//   --progress                   one-line live progress samples on stderr
//   --profile-json=FILE          cycle profiler sidecar (wall-clock plane)
//   --profile-interval-ms=N      profiler timeline sampler period (off by
//                                default; counters alone need no thread)
//   --profile-max-samples=N      profiler timeline cap (default 4096)
// TelemetryFlags is the one place those flags are recognized and acted on,
// so the CLI subcommands, the bench mains, and the experiment harness all
// agree on spelling and arming semantics instead of each carrying a copy.
// The monitor flags are only *wired* where a run exposes monitor hooks
// (today: `satpg atpg` via the parallel driver); other tools parse them for
// spelling uniformity and ignore them.
//
// Usage: call parse() from the flag loop (returns true when the arg was
// consumed), arm() once before the measured work, then finish_trace() and
// either write_metrics_registry() (generic dump) or a schema-specific
// report writer after it. monitor_options() hands the parsed monitor flags
// to whatever run accepts a RunMonitorOptions.
#pragma once

#include <iosfwd>
#include <string>

#include "base/monitor.h"

namespace satpg {

/// Strict numeric flag parsing: the whole value must be a decimal number
/// with `*out > 0` — anything else (empty, trailing junk, zero, negative)
/// returns false so the caller can exit 2 with usage instead of silently
/// clamping a typo into a real run.
bool parse_positive_u64(const char* s, std::uint64_t* out);
bool parse_positive_double(const char* s, double* out);

struct TelemetryFlags {
  std::string metrics_json;    ///< empty = metrics disabled
  std::string events_json;     ///< empty = flight recorder disabled
  std::string trace_json;      ///< empty = tracing disabled
  std::string heartbeat_json;  ///< empty = no heartbeat stream
  std::string profile_json;    ///< empty = cycle profiler disabled
  bool progress = false;       ///< live progress lines on stderr
  std::uint64_t heartbeat_interval_ms = 500;
  /// Profiler timeline sampler period (0 = counters only, no sampler)
  /// and its sample cap (--profile-interval-ms / --profile-max-samples).
  std::uint64_t profile_interval_ms = 0;
  std::uint64_t profile_max_samples = 4096;
  /// First flag whose value failed strict validation ("" = all valid).
  /// parse() still consumes such a flag; callers must check error after
  /// their flag loop and exit 2 with usage.
  std::string error;

  /// Consume one of the telemetry flags above. Returns false when `arg` is
  /// none of them (caller keeps parsing its own flags).
  bool parse(const char* arg);

  bool metrics_enabled() const { return !metrics_json.empty(); }
  bool events_enabled() const { return !events_json.empty(); }
  bool trace_enabled() const { return !trace_json.empty(); }
  bool monitor_enabled() const {
    return !heartbeat_json.empty() || progress;
  }
  bool profile_enabled() const { return !profile_json.empty(); }

  /// The parsed monitor flags in the shape base/monitor.h consumes.
  RunMonitorOptions monitor_options() const {
    RunMonitorOptions opts;
    opts.heartbeat_json = heartbeat_json;
    opts.progress = progress;
    opts.interval_ms = heartbeat_interval_ms;
    return opts;
  }

  /// Reset + enable the metrics and memstats registries and/or start the
  /// trace recorder, as requested by the parsed flags. Call once, before
  /// the measured work.
  void arm() const;

  /// Stop the recorder and write trace_json. Returns false (after printing
  /// to stderr) on write failure; true when tracing was never requested.
  bool finish_trace(std::ostream* info = nullptr) const;

  /// Disable metrics and write the generic registry dump
  ///   {"schema": <schema>, "bench": <label>, "metrics": {...}}
  /// to metrics_json. Returns false (after printing to stderr) on write
  /// failure; true when metrics were never requested. Tools with a richer
  /// schema (satpg atpg) write their own report instead of calling this.
  bool write_metrics_registry(const char* schema, const std::string& label,
                              std::ostream* info = nullptr) const;
};

}  // namespace satpg
