// Shared command-line plumbing for the telemetry subsystem.
//
// Every tool that can run an engine accepts the same two flags:
//   --metrics-json=FILE   deterministic structured metrics dump
//   --trace-json=FILE     Chrome trace_event timeline (wall-clock)
// TelemetryFlags is the one place those flags are recognized and acted on,
// so the CLI subcommands, the bench mains, and the experiment harness all
// agree on spelling and arming semantics instead of each carrying a copy.
//
// Usage: call parse() from the flag loop (returns true when the arg was
// consumed), arm() once before the measured work, then finish_trace() and
// either write_metrics_registry() (generic dump) or a schema-specific
// report writer after it.
#pragma once

#include <iosfwd>
#include <string>

namespace satpg {

struct TelemetryFlags {
  std::string metrics_json;  ///< empty = metrics disabled
  std::string trace_json;    ///< empty = tracing disabled

  /// Consume `--metrics-json=FILE` / `--trace-json=FILE`. Returns false
  /// when `arg` is neither (caller keeps parsing its own flags).
  bool parse(const char* arg);

  bool metrics_enabled() const { return !metrics_json.empty(); }
  bool trace_enabled() const { return !trace_json.empty(); }

  /// Reset + enable the metrics registry and/or start the trace recorder,
  /// as requested by the parsed flags. Call once, before the measured work.
  void arm() const;

  /// Stop the recorder and write trace_json. Returns false (after printing
  /// to stderr) on write failure; true when tracing was never requested.
  bool finish_trace(std::ostream* info = nullptr) const;

  /// Disable metrics and write the generic registry dump
  ///   {"schema": <schema>, "bench": <label>, "metrics": {...}}
  /// to metrics_json. Returns false (after printing to stderr) on write
  /// failure; true when metrics were never requested. Tools with a richer
  /// schema (satpg atpg) write their own report instead of calling this.
  bool write_metrics_registry(const char* schema, const std::string& label,
                              std::ostream* info = nullptr) const;
};

}  // namespace satpg
