#include "base/threadpool.h"

#include <algorithm>
#include <string>
#include <utility>

#include "base/metrics.h"
#include "base/trace.h"

namespace satpg {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth;
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  task_ready_.notify_one();
  if (tracing_enabled()) {
    TraceRecorder& rec = TraceRecorder::global();
    rec.add_counter("pool.queue_depth", rec.now_us(),
                    static_cast<std::uint64_t>(depth));
  }
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::run_on_workers(unsigned workers,
                                const std::function<void(unsigned)>& fn) {
  for (unsigned w = 1; w < workers; ++w) submit([&fn, w] { fn(w); });
  if (workers >= 1) fn(0);
  if (workers > 1) wait_all();
}

void ThreadPool::worker_loop(unsigned index) {
  // Claims this worker's dense telemetry index and labels its trace lane;
  // the busy spans below make idle time visible as lane gaps.
  TraceRecorder::global().set_thread_name(
      telemetry_register_worker(), "pool-worker-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    std::size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
      ++in_flight_;
    }
    if (tracing_enabled()) {
      TraceRecorder& rec = TraceRecorder::global();
      const std::uint64_t start = rec.now_us();
      rec.add_counter("pool.queue_depth", start,
                      static_cast<std::uint64_t>(depth));
      task();
      rec.add_complete("pool.task", "pool", telemetry_thread_index(), start,
                       rec.now_us() - start);
    } else {
      task();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

}  // namespace satpg
