#include "base/bitvec.h"

#include <bit>

namespace satpg {

namespace {
constexpr std::size_t kWordBits = 64;
std::size_t words_for(std::size_t nbits) {
  return (nbits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVec::BitVec(std::size_t nbits, bool value)
    : nbits_(nbits), words_(words_for(nbits), value ? ~0ULL : 0ULL) {
  trim();
}

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[s.size() - 1 - i];
    SATPG_CHECK_MSG(c == '0' || c == '1', "BitVec::from_string: bad char");
    v.set(i, c == '1');
  }
  return v;
}

BitVec BitVec::from_value(std::size_t nbits, std::uint64_t value) {
  BitVec v(nbits);
  for (std::size_t i = 0; i < nbits && i < 64; ++i)
    v.set(i, (value >> i) & 1u);
  return v;
}

void BitVec::resize(std::size_t nbits, bool value) {
  const std::size_t old_bits = nbits_;
  words_.resize(words_for(nbits), value ? ~0ULL : 0ULL);
  nbits_ = nbits;
  if (value && nbits > old_bits) {
    // Fill the tail of the previously-last word.
    for (std::size_t i = old_bits; i < nbits && i < words_for(old_bits) * 64;
         ++i)
      set(i, true);
  }
  trim();
}

void BitVec::clear_all() {
  for (auto& w : words_) w = 0;
}

void BitVec::set_all() {
  for (auto& w : words_) w = ~0ULL;
  trim();
}

std::size_t BitVec::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::any() const {
  for (auto w : words_)
    if (w) return true;
  return false;
}

std::size_t BitVec::find_first() const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi)
    if (words_[wi])
      return wi * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[wi]));
  return nbits_;
}

std::size_t BitVec::find_next(std::size_t i) const {
  ++i;
  if (i >= nbits_) return nbits_;
  std::size_t wi = i >> 6;
  std::uint64_t w = words_[wi] & (~0ULL << (i & 63));
  for (;;) {
    if (w)
      return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
    if (++wi >= words_.size()) return nbits_;
    w = words_[wi];
  }
}

BitVec& BitVec::operator&=(const BitVec& o) {
  SATPG_DCHECK(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  SATPG_DCHECK(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  SATPG_DCHECK(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

BitVec BitVec::operator~() const {
  BitVec r(*this);
  for (auto& w : r.words_) w = ~w;
  r.trim();
  return r;
}

bool BitVec::operator==(const BitVec& o) const {
  return nbits_ == o.nbits_ && words_ == o.words_;
}

bool BitVec::operator<(const BitVec& o) const {
  if (nbits_ != o.nbits_) return nbits_ < o.nbits_;
  // Compare most-significant word first for numeric-like ordering.
  for (std::size_t i = words_.size(); i-- > 0;)
    if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
  return false;
}

bool BitVec::is_subset_of(const BitVec& o) const {
  SATPG_DCHECK(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & ~o.words_[i]) return false;
  return true;
}

std::uint64_t BitVec::to_u64() const {
  SATPG_CHECK_MSG(nbits_ <= 64, "BitVec::to_u64: too wide");
  return words_.empty() ? 0 : words_[0];
}

std::string BitVec::to_string() const {
  std::string s(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i)
    if (get(i)) s[nbits_ - 1 - i] = '1';
  return s;
}

std::size_t BitVec::hash() const {
  // FNV-1a over words plus the size.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(nbits_);
  for (auto w : words_) mix(w);
  return static_cast<std::size_t>(h);
}

void BitVec::trim() {
  const std::size_t tail = nbits_ & 63;
  if (!words_.empty() && tail != 0)
    words_.back() &= (~0ULL >> (kWordBits - tail));
}

}  // namespace satpg
