// Lightweight assertion macros used across the library.
//
// SATPG_CHECK is always on (it guards structural invariants whose violation
// would silently corrupt experiment results); SATPG_DCHECK compiles away in
// release builds and is used on hot simulation/ATPG paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace satpg {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace satpg

#define SATPG_CHECK(cond)                                        \
  do {                                                           \
    if (!(cond))                                                 \
      ::satpg::check_failed(#cond, __FILE__, __LINE__, nullptr); \
  } while (0)

#define SATPG_CHECK_MSG(cond, msg)                            \
  do {                                                        \
    if (!(cond))                                              \
      ::satpg::check_failed(#cond, __FILE__, __LINE__, msg);  \
  } while (0)

#ifdef NDEBUG
#define SATPG_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define SATPG_DCHECK(cond) SATPG_CHECK(cond)
#endif
