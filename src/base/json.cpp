#include "base/json.h"

#include <cctype>
#include <cstdio>

#include "base/strutil.h"

namespace satpg {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Recursive-descent validator over the raw bytes; pos_ tracks the byte
// offset for error messages.
class Validator {
 public:
  explicit Validator(const std::string& text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value()) {
      if (error) *error = strprintf("JSON parse error at byte %zu", pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error)
        *error = strprintf("trailing bytes after JSON value at byte %zu",
                           pos_);
      return false;
    }
    return true;
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eof() const { return pos_ >= text_.size(); }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool literal(const char* word) {
    std::size_t i = 0;
    while (word[i]) {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != word[i])
        return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (!eof()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])))
              return false;
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      } else {
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    ++pos_;  // consume '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // consume '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(const std::string& text, std::string* error) {
  return Validator(text).run(error);
}

}  // namespace satpg
