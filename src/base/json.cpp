#include "base/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "base/strutil.h"

namespace satpg {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Recursive-descent validator over the raw bytes; pos_ tracks the byte
// offset for error messages.
class Validator {
 public:
  explicit Validator(const std::string& text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value()) {
      if (error) *error = strprintf("JSON parse error at byte %zu", pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error)
        *error = strprintf("trailing bytes after JSON value at byte %zu",
                           pos_);
      return false;
    }
    return true;
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eof() const { return pos_ >= text_.size(); }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool literal(const char* word) {
    std::size_t i = 0;
    while (word[i]) {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != word[i])
        return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (!eof()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])))
              return false;
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      } else {
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    if (++depth_ > kJsonMaxDepth) return false;
    ++pos_;  // consume '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    if (++depth_ > kJsonMaxDepth) return false;
    ++pos_;  // consume '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

// Recursive-descent parser building a JsonValue tree. Kept separate from
// the Validator: validation stays allocation-free for the smoke tests,
// and the parser can assume nothing (it re-checks syntax itself).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool run(JsonValue* out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      if (error) *error = strprintf("JSON parse error at byte %zu", pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error)
        *error = strprintf("trailing bytes after JSON value at byte %zu",
                           pos_);
      return false;
    }
    return true;
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eof() const { return pos_ >= text_.size(); }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool literal(const char* word) {
    std::size_t i = 0;
    while (word[i]) {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != word[i])
        return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// Four hex digits at pos_; advances past them on success.
  bool hex4(std::uint32_t* out) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) return false;
      const char c = text_[pos_];
      if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
      v = v * 16 + static_cast<std::uint32_t>(
                       c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
      ++pos_;
    }
    *out = v;
    return true;
  }

  bool string(std::string* out) {
    if (peek() != '"') return false;
    ++pos_;
    out->clear();
    while (!eof()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            std::uint32_t cp;
            if (!hex4(&cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: pairs with an immediately following \uDC00..
              // \uDFFF; otherwise decode as U+FFFD (lossy, not an error —
              // the validator accepts lone surrogates too).
              std::uint32_t lo;
              if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                  text_[pos_ + 1] == 'u') {
                const std::size_t save = pos_;
                pos_ += 2;
                if (hex4(&lo) && lo >= 0xDC00 && lo <= 0xDFFF) {
                  cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else {
                  pos_ = save;
                  cp = 0xFFFD;
                }
              } else {
                cp = 0xFFFD;
              }
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              cp = 0xFFFD;  // unpaired low surrogate
            }
            append_utf8(*out, cp);
            break;
          }
          default:
            return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool number(double* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    // The grammar above admits only valid strtod input (and no NaN/Inf
    // spellings — those fail before we get here).
    *out = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  bool value(JsonValue* out) {
    switch (peek()) {
      case '{': {
        if (++depth_ > kJsonMaxDepth) return false;
        ++pos_;
        std::vector<std::pair<std::string, JsonValue>> members;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
        } else {
          while (true) {
            skip_ws();
            std::string key;
            if (!string(&key)) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            JsonValue v;
            if (!value(&v)) return false;
            members.emplace_back(std::move(key), std::move(v));
            skip_ws();
            if (peek() == ',') {
              ++pos_;
              continue;
            }
            if (peek() == '}') {
              ++pos_;
              break;
            }
            return false;
          }
        }
        --depth_;
        *out = JsonValue::make_object(std::move(members));
        return true;
      }
      case '[': {
        if (++depth_ > kJsonMaxDepth) return false;
        ++pos_;
        std::vector<JsonValue> items;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
        } else {
          while (true) {
            skip_ws();
            JsonValue v;
            if (!value(&v)) return false;
            items.push_back(std::move(v));
            skip_ws();
            if (peek() == ',') {
              ++pos_;
              continue;
            }
            if (peek() == ']') {
              ++pos_;
              break;
            }
            return false;
          }
        }
        --depth_;
        *out = JsonValue::make_array(std::move(items));
        return true;
      }
      case '"': {
        std::string s;
        if (!string(&s)) return false;
        *out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue::make_null();
        return true;
      default: {
        double d;
        if (!number(&d)) return false;
        *out = JsonValue::make_number(d);
        return true;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

bool json_valid(const std::string& text, std::string* error) {
  return Validator(text).run(error);
}

// ---- JsonValue --------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::num_or(const std::string& key, double dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number() : dflt;
}

std::uint64_t JsonValue::uint_or(const std::string& key,
                                 std::uint64_t dflt) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number() || v->number() < 0) return dflt;
  return static_cast<std::uint64_t>(v->number());
}

std::string JsonValue::str_or(const std::string& key,
                              const std::string& dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string() : dflt;
}

bool JsonValue::bool_or(const std::string& key, bool dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->boolean() : dflt;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

bool json_parse(const std::string& text, JsonValue* out,
                std::string* error) {
  return Parser(text).run(out, error);
}

}  // namespace satpg
