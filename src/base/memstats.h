// Deterministic per-subsystem byte accounting — the space-axis twin of
// base/metrics.
//
// Two accounting planes share one subsystem taxonomy:
//
//   * MemTally — a plain, non-atomic tally owned by exactly one fault
//     attempt (or one single-threaded phase). Engines charge/release into
//     it through PodemBudget; the parallel driver folds attempt tallies at
//     its merge barrier in unit/fault order, so every aggregate is a pure
//     function of (netlist, faults, options) — byte-identical at any
//     --threads value. The disabled mode is a null pointer: no tally
//     attached, no accounting, no branches beyond one pointer test.
//   * MemStatsRegistry — a process-wide registry for subsystems whose
//     ownership is not attempt-scoped (fsim arenas, the BDD reachability
//     oracle, the shared learning cache). Charge sites are cold (per
//     simulation call, per publish, once per oracle build) so plain
//     atomics suffice; determinism is kept by construction: every charge
//     passes an explicit deterministic `peak_hint` instead of deriving a
//     peak from racy live bytes, and grow-only subsystems report
//     peak == live-at-snapshot. Mutations are dropped while the global
//     enable flag is off (same discipline as metrics_enabled()).
//
// The two planes touch DISJOINT subsystems — attempt tallies own the
// search-side structures (clause DB, CNF encoder, TFM frames, decision
// rings), the registry owns the shared ones — so a report merges them
// without double counting.
//
// Everything here is logical bytes (element counts x element sizes), not
// malloc bytes: logical sizes are pure functions of the inputs, allocator
// slack is not. Process-level truth (VmHWM) is wall-clock-shaped and lives
// in heartbeats/trace only (DESIGN.md §11).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace satpg {

namespace detail {
extern std::atomic<bool> g_memstats_enabled;
}

/// Global on/off switch for the registry plane; charges are dropped while
/// off. Attempt tallies are armed separately (by attaching a tally).
inline bool memstats_enabled() {
  return detail::g_memstats_enabled.load(std::memory_order_relaxed);
}
void set_memstats_enabled(bool on);

/// Allocation-heavy subsystems under byte accounting. Enumerator order IS
/// sorted JSON-name order; keep both in sync (memstats.cpp has the name
/// table). Names never contain the substring "wall" — reports embedding
/// them must stay wall-clock free.
enum class MemSubsystem : unsigned {
  kBddOracle = 0,   ///< reachability oracle state sets (analysis/reach)
  kCdclClauseDb,    ///< CDCL clauses + watch lists (atpg/cdcl/solver)
  kCnfEncoder,      ///< time-frame Tseitin encoder maps (atpg/cdcl/cnf)
  kDecisionRing,    ///< capture ring buffers (atpg/capture)
  kFsimArena,       ///< 64-slot fault-simulation arenas (fsim/fsim)
  kFsimWideLanes,   ///< wide-engine lane buffers + group images (fsim_wide)
  kSharedCubes,     ///< cross-worker learned-cube cache (atpg/parallel)
  kTfmFrames,       ///< structural time-frame models (atpg/tfm)
  kCount
};
inline constexpr std::size_t kNumMemSubsystems =
    static_cast<std::size_t>(MemSubsystem::kCount);

const char* mem_subsystem_name(MemSubsystem s);

/// Plain per-owner tally. Non-atomic: exactly one thread mutates it at a
/// time (one attempt, or the orchestrator between rounds). All fields are
/// integers and order-independent under add(), so folding tallies in the
/// driver's deterministic merge order yields thread-count-invariant
/// aggregates.
struct MemTally {
  struct Account {
    std::uint64_t allocated = 0;  ///< cumulative bytes charged
    std::uint64_t freed = 0;      ///< cumulative bytes released
    std::uint64_t allocs = 0;     ///< charge events
    std::uint64_t peak = 0;       ///< max simultaneous bytes observed
    std::uint64_t live() const { return allocated - freed; }
  };

  std::array<Account, kNumMemSubsystems> acct{};
  std::uint64_t live = 0;  ///< current bytes across all subsystems
  std::uint64_t peak = 0;  ///< max simultaneous bytes across subsystems

  void charge(MemSubsystem s, std::uint64_t bytes) {
    Account& a = acct[static_cast<std::size_t>(s)];
    a.allocated += bytes;
    ++a.allocs;
    if (a.live() > a.peak) a.peak = a.live();
    live += bytes;
    if (live > peak) peak = live;
  }
  void release(MemSubsystem s, std::uint64_t bytes) {
    Account& a = acct[static_cast<std::size_t>(s)];
    a.freed += bytes;
    live -= bytes;
  }

  /// Deterministic fold: sums for the monotone fields, max for the peaks.
  /// Commutative and associative, so any merge order gives the same bytes;
  /// the driver still folds in unit/fault order by convention.
  void add(const MemTally& o) {
    for (std::size_t i = 0; i < kNumMemSubsystems; ++i) {
      acct[i].allocated += o.acct[i].allocated;
      acct[i].freed += o.acct[i].freed;
      acct[i].allocs += o.acct[i].allocs;
      if (o.acct[i].peak > acct[i].peak) acct[i].peak = o.acct[i].peak;
    }
    live += o.live;
    if (o.peak > peak) peak = o.peak;
  }

  std::uint64_t total_allocated() const {
    std::uint64_t t = 0;
    for (const Account& a : acct) t += a.allocated;
    return t;
  }
  /// Sum of per-subsystem peaks: a deterministic upper bound on the
  /// simultaneous footprint (subsystem peaks need not coincide in time).
  std::uint64_t peak_upper_bound() const {
    std::uint64_t t = 0;
    for (const Account& a : acct) t += a.peak;
    return t;
  }

  /// Deterministic dump: subsystem names in sorted order, integers only.
  /// Rows with zero activity are still emitted so the block's shape is a
  /// constant of the schema, not of the run.
  void write_json(std::ostream& os, int indent = 0) const;
};

/// RAII ownership tag over a MemTally: charges `bytes` on construction,
/// releases them on destruction. A null tally or zero bytes makes the
/// whole object a no-op — the disabled-mode fast path.
class MemScope {
 public:
  MemScope() = default;
  MemScope(MemTally* tally, MemSubsystem sub, std::uint64_t bytes)
      : tally_(tally), sub_(sub), bytes_(bytes) {
    if (tally_ != nullptr && bytes_ != 0) tally_->charge(sub_, bytes_);
  }
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;
  ~MemScope() {
    if (tally_ != nullptr && bytes_ != 0) tally_->release(sub_, bytes_);
  }

  /// Re-state the owned footprint (e.g. after a container grew).
  void resize(std::uint64_t new_bytes) {
    if (tally_ == nullptr) return;
    if (new_bytes > bytes_) tally_->charge(sub_, new_bytes - bytes_);
    if (new_bytes < bytes_) tally_->release(sub_, bytes_ - new_bytes);
    bytes_ = new_bytes;
  }
  std::uint64_t bytes() const { return bytes_; }

 private:
  MemTally* tally_ = nullptr;
  MemSubsystem sub_ = MemSubsystem::kCount;
  std::uint64_t bytes_ = 0;
};

/// Process-wide accounting for subsystems whose lifetime is not
/// attempt-scoped. Cold-path atomics; see header comment for the
/// determinism-by-construction rules.
class MemStatsRegistry {
 public:
  /// Charge `bytes`; `peak_hint` (default: `bytes`) is the deterministic
  /// candidate folded into the subsystem peak — callers pass the footprint
  /// of THIS ownership scope, never a value derived from concurrent live
  /// bytes. No-op while memstats are disabled.
  void charge(MemSubsystem s, std::uint64_t bytes,
              std::uint64_t peak_hint = 0);
  void release(MemSubsystem s, std::uint64_t bytes);

  /// Plain copy for report assembly. Subsystem peaks are
  /// max(recorded hints, live-at-snapshot) so grow-only subsystems report
  /// peak == live without ever racing on a live-derived maximum.
  MemTally snapshot() const;

  /// Current accounted bytes across all subsystems. Racy under concurrent
  /// charges — heartbeat/trace display only, never reports.
  std::uint64_t live_bytes() const;

  /// Zero every account (between runs that must report independently).
  void reset();

  static MemStatsRegistry& global();

 private:
  struct Account {
    std::atomic<std::uint64_t> allocated{0};
    std::atomic<std::uint64_t> freed{0};
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> peak{0};
  };
  std::array<Account, kNumMemSubsystems> acct_;
};

/// RAII ownership tag over the global registry: charges on construction
/// (peak_hint = the same bytes — the footprint of this scope), releases on
/// destruction. Zero bytes makes it a no-op; callers gate any footprint
/// computation on memstats_enabled() and pass 0 when off.
class MemRegistryScope {
 public:
  MemRegistryScope(MemSubsystem sub, std::uint64_t bytes)
      : sub_(sub), bytes_(bytes) {
    if (bytes_ != 0) MemStatsRegistry::global().charge(sub_, bytes_, bytes_);
  }
  MemRegistryScope(const MemRegistryScope&) = delete;
  MemRegistryScope& operator=(const MemRegistryScope&) = delete;
  ~MemRegistryScope() {
    if (bytes_ != 0) MemStatsRegistry::global().release(sub_, bytes_);
  }

 private:
  MemSubsystem sub_;
  std::uint64_t bytes_;
};

/// Process peak resident set (VmHWM from /proc/self/status) in kilobytes;
/// 0 where unavailable. Wall-clock-shaped by nature: heartbeats and trace
/// only, never a deterministic report (DESIGN.md §11).
std::uint64_t process_peak_rss_kb();

}  // namespace satpg
