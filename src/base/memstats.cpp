#include "base/memstats.h"

#include <cstdio>
#include <cstring>
#include <ostream>

namespace satpg {

namespace detail {
std::atomic<bool> g_memstats_enabled{false};
}

void set_memstats_enabled(bool on) {
  detail::g_memstats_enabled.store(on, std::memory_order_relaxed);
}

namespace {

// Enumerator order == sorted-name order; MemTally::write_json leans on it.
constexpr const char* kSubsystemNames[kNumMemSubsystems] = {
    "bdd_oracle",     "cdcl_clause_db",  "cnf_encoder", "decision_ring",
    "fsim_arena",     "fsim_wide_lanes", "shared_cubes", "tfm_frames",
};

}  // namespace

const char* mem_subsystem_name(MemSubsystem s) {
  return kSubsystemNames[static_cast<std::size_t>(s)];
}

void MemTally::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad1 = pad + "  ";
  const std::string pad2 = pad1 + "  ";
  os << "{\n" << pad1 << "\"subsystems\": {";
  for (std::size_t i = 0; i < kNumMemSubsystems; ++i) {
    const Account& a = acct[i];
    os << (i == 0 ? "\n" : ",\n") << pad2 << '"' << kSubsystemNames[i]
       << "\": {\"live\": " << a.live() << ", \"peak\": " << a.peak
       << ", \"allocated\": " << a.allocated << ", \"allocs\": " << a.allocs
       << '}';
  }
  os << '\n' << pad1 << "},\n";
  os << pad1 << "\"total\": {\"live\": " << live
     << ", \"peak\": " << peak_upper_bound()
     << ", \"allocated\": " << total_allocated() << "}\n"
     << pad << '}';
}

// ---- registry ---------------------------------------------------------------

void MemStatsRegistry::charge(MemSubsystem s, std::uint64_t bytes,
                              std::uint64_t peak_hint) {
  if (!memstats_enabled()) return;
  Account& a = acct_[static_cast<std::size_t>(s)];
  a.allocated.fetch_add(bytes, std::memory_order_relaxed);
  a.allocs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t hint = peak_hint != 0 ? peak_hint : bytes;
  std::uint64_t cur = a.peak.load(std::memory_order_relaxed);
  while (hint > cur && !a.peak.compare_exchange_weak(
                           cur, hint, std::memory_order_relaxed)) {
  }
}

void MemStatsRegistry::release(MemSubsystem s, std::uint64_t bytes) {
  if (!memstats_enabled()) return;
  acct_[static_cast<std::size_t>(s)].freed.fetch_add(
      bytes, std::memory_order_relaxed);
}

MemTally MemStatsRegistry::snapshot() const {
  MemTally t;
  for (std::size_t i = 0; i < kNumMemSubsystems; ++i) {
    const Account& a = acct_[i];
    MemTally::Account& out = t.acct[i];
    out.allocated = a.allocated.load(std::memory_order_relaxed);
    out.freed = a.freed.load(std::memory_order_relaxed);
    out.allocs = a.allocs.load(std::memory_order_relaxed);
    out.peak = a.peak.load(std::memory_order_relaxed);
    if (out.live() > out.peak) out.peak = out.live();
    t.live += out.live();
    if (t.live > t.peak) t.peak = t.live;
  }
  return t;
}

std::uint64_t MemStatsRegistry::live_bytes() const {
  std::uint64_t t = 0;
  for (const Account& a : acct_)
    t += a.allocated.load(std::memory_order_relaxed) -
         a.freed.load(std::memory_order_relaxed);
  return t;
}

void MemStatsRegistry::reset() {
  for (Account& a : acct_) {
    a.allocated.store(0, std::memory_order_relaxed);
    a.freed.store(0, std::memory_order_relaxed);
    a.allocs.store(0, std::memory_order_relaxed);
    a.peak.store(0, std::memory_order_relaxed);
  }
}

MemStatsRegistry& MemStatsRegistry::global() {
  static MemStatsRegistry registry;
  return registry;
}

std::uint64_t process_peak_rss_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + 6, "%llu", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

}  // namespace satpg
