// Live run monitoring: a snapshot thread streaming NDJSON heartbeats.
//
// RunMonitor owns one background thread that periodically asks a
// MonitorSource for (a) a heartbeat JSON object appended as one line to the
// `--heartbeat-json` sink and (b) a one-line human progress string printed
// to stderr under `--progress`. The monitor is strictly an observer: it
// never feeds anything back into the run, so arming it cannot change any
// deterministic artifact (metrics/report JSON stay byte-identical with the
// monitor on or off — DESIGN.md §7). Heartbeats are the designated home
// for wall-clock data; everything wall-tainted belongs here or in the
// trace, never in the metrics report.
//
// The source is sampled from the monitor thread concurrently with the run;
// implementations must only read atomics or immutable data. A torn
// multi-field read across a fault handoff is acceptable (display only) —
// single fields must still be individually race-free.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

namespace satpg {

struct RunMonitorOptions {
  std::string heartbeat_json;     ///< NDJSON sink path; empty = no stream
  bool progress = false;          ///< one-line samples on stderr
  std::uint64_t interval_ms = 500;

  bool enabled() const { return !heartbeat_json.empty() || progress; }
};

/// What the monitor samples. Implementations live next to the run they
/// observe (e.g. the parallel ATPG driver) and must be safe to call from
/// the monitor thread while the run executes.
class MonitorSource {
 public:
  virtual ~MonitorSource() = default;
  /// One complete heartbeat JSON object (no trailing newline). `seq` is the
  /// 0-based sample number, `elapsed_s` seconds since start().
  virtual std::string heartbeat_json(std::uint64_t seq,
                                     double elapsed_s) = 0;
  /// One human progress line (no trailing newline) for stderr.
  virtual std::string progress_line(double elapsed_s) = 0;
};

/// Periodic sampler. start() spawns the thread; stop() takes one final
/// sample (so even runs shorter than the interval emit at least one
/// heartbeat), joins, and flushes the sink. The destructor stops too, but
/// callers that dump reports should stop() first so the heartbeat stream is
/// complete before anything else is written.
class RunMonitor {
 public:
  RunMonitor(MonitorSource* source, const RunMonitorOptions& opts);
  ~RunMonitor();
  RunMonitor(const RunMonitor&) = delete;
  RunMonitor& operator=(const RunMonitor&) = delete;

  /// Open the sink and spawn the sampler thread. Returns false (after a
  /// stderr message) when the heartbeat file cannot be opened; the run
  /// proceeds unmonitored. No-op when the options enable nothing.
  bool start();
  void stop();

  bool running() const { return running_; }
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void sample_once();

  MonitorSource* source_;
  RunMonitorOptions opts_;
  std::ofstream out_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point t0_;
  std::atomic<std::uint64_t> samples_{0};
};

}  // namespace satpg
