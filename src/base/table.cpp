#include "base/table.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "base/check.h"
#include "base/json.h"

namespace satpg {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)))
      digit = true;
    else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
             c != '%' && c != 'x')
      return false;
  }
  return digit;
}
}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  SATPG_CHECK_MSG(cells.size() == headers_.size(), "Table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      const bool right = align_numeric && looks_numeric(row[c]);
      if (right)
        os << std::string(width[c] - row[c].size(), ' ') << row[c];
      else
        os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(headers_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, true);
  return os.str();
}

std::string Table::to_json() const {
  std::ostringstream os;
  os << "{\"headers\": [";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? ", " : "") << '"' << json_escape(headers_[c]) << '"';
  os << "],\n \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r ? ",\n  " : "\n  ") << '[';
    for (std::size_t c = 0; c < rows_[r].size(); ++c)
      os << (c ? ", " : "") << '"' << json_escape(rows_[r][c]) << '"';
    os << ']';
  }
  os << (rows_.empty() ? "" : "\n ") << "]}";
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace satpg
