#include "base/profiler.h"

#include <cstdlib>
#include <cstring>
#include <ctime>

#include "base/metrics.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SATPG_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace satpg {

namespace detail {
std::atomic<bool> g_profiler_enabled{false};
}

namespace {

// CLOCK_THREAD_CPUTIME_ID is the one counter source that works everywhere
// we build; both backends report it as task_clock_ns.
std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

// The five hardware counters in the perf_event group, in ProfCounter
// order starting at kCycles (the group leader).
constexpr std::size_t kNumPerfEvents = 5;

#if defined(SATPG_HAVE_PERF_EVENT)

constexpr std::uint64_t kPerfConfigs[kNumPerfEvents] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES};

int perf_event_open_fd(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // lowers the perf_event_paranoid bar
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                  group_fd, 0));
}

// Per-thread counter group, opened lazily on the first profiled span of
// each thread and closed when the thread exits. Counters are free-running
// (spans take deltas), so groups survive profiler restarts.
struct PerfThreadGroup {
  int leader = -1;
  bool tried = false;

  bool open() {
    if (tried) return leader >= 0;
    tried = true;
    leader = perf_event_open_fd(kPerfConfigs[0], -1);
    if (leader < 0) return false;
    for (std::size_t i = 1; i < kNumPerfEvents; ++i) {
      const int fd = perf_event_open_fd(kPerfConfigs[i], leader);
      if (fd < 0) {
        // A partially-available PMU (e.g. no cache events in a VM) is
        // not worth a mixed-shape group: degrade the whole thread to
        // task-clock only so every lane reports the same counter set.
        ::close(leader);
        leader = -1;
        return false;
      }
      fds[i] = fd;
    }
    return true;
  }

  // Scaled group read in ProfCounter order (cycles first). Returns false
  // (zeros) when the group is unavailable or the read fails.
  bool read_values(std::uint64_t* out) {
    if (!open()) return false;
    // read_format: nr, time_enabled, time_running, values[nr].
    std::uint64_t buf[3 + kNumPerfEvents];
    const ssize_t n = ::read(leader, buf, sizeof(buf));
    if (n != static_cast<ssize_t>(sizeof(buf)) || buf[0] != kNumPerfEvents)
      return false;
    const std::uint64_t enabled = buf[1], running = buf[2];
    // Multiplexing scale-up: with one group per thread this is almost
    // always 1.0, but a contended PMU still yields usable estimates.
    const double scale =
        (running > 0 && running < enabled)
            ? static_cast<double>(enabled) / static_cast<double>(running)
            : 1.0;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i)
      out[i] = static_cast<std::uint64_t>(
          static_cast<double>(buf[3 + i]) * scale);
    return true;
  }

  ~PerfThreadGroup() {
    for (std::size_t i = 1; i < kNumPerfEvents; ++i)
      if (fds[i] >= 0) ::close(fds[i]);
    if (leader >= 0) ::close(leader);
  }

  int fds[kNumPerfEvents] = {-1, -1, -1, -1, -1};
};

thread_local PerfThreadGroup t_perf_group;

bool perf_backend_usable() { return t_perf_group.open(); }

bool read_perf_group(std::uint64_t* out) {
  return t_perf_group.read_values(out);
}

#else

bool perf_backend_usable() { return false; }
bool read_perf_group(std::uint64_t*) { return false; }

#endif  // SATPG_HAVE_PERF_EVENT

}  // namespace

const char* prof_phase_name(ProfPhase p) {
  switch (p) {
    case ProfPhase::kAtpgMerge:
      return "atpg.merge";
    case ProfPhase::kCdclAnalyze:
      return "cdcl.analyze";
    case ProfPhase::kCdclPropagate:
      return "cdcl.propagate";
    case ProfPhase::kCdclReduceDb:
      return "cdcl.reduce_db";
    case ProfPhase::kFsimBatch:
      return "fsim.batch";
    case ProfPhase::kFsimGood:
      return "fsim.good";
    case ProfPhase::kFsimWideGood:
      return "fsim.wide.good";
    case ProfPhase::kFsimWideKernelAvx2:
      return "fsim.wide.kernel.avx2";
    case ProfPhase::kFsimWideKernelAvx512:
      return "fsim.wide.kernel.avx512";
    case ProfPhase::kFsimWideKernelScalar:
      return "fsim.wide.kernel.scalar";
    case ProfPhase::kFsimWideKernelSse2:
      return "fsim.wide.kernel.sse2";
    case ProfPhase::kPodemBacktrace:
      return "podem.backtrace";
    case ProfPhase::kPodemJustify:
      return "podem.justify";
  }
  return "?";
}

const char* prof_phase_subsystem(ProfPhase p) {
  switch (p) {
    case ProfPhase::kAtpgMerge:
      return "atpg";
    case ProfPhase::kCdclAnalyze:
    case ProfPhase::kCdclPropagate:
    case ProfPhase::kCdclReduceDb:
      return "cdcl";
    case ProfPhase::kFsimBatch:
    case ProfPhase::kFsimGood:
    case ProfPhase::kFsimWideGood:
    case ProfPhase::kFsimWideKernelAvx2:
    case ProfPhase::kFsimWideKernelAvx512:
    case ProfPhase::kFsimWideKernelScalar:
    case ProfPhase::kFsimWideKernelSse2:
      return "fsim";
    case ProfPhase::kPodemBacktrace:
    case ProfPhase::kPodemJustify:
      return "podem";
  }
  return "?";
}

ProfPhase prof_phase_for_wide_kernel(SimdTier tier) {
  switch (tier) {
    case SimdTier::kSse2:
      return ProfPhase::kFsimWideKernelSse2;
    case SimdTier::kAvx2:
      return ProfPhase::kFsimWideKernelAvx2;
    case SimdTier::kAvx512:
      return ProfPhase::kFsimWideKernelAvx512;
    case SimdTier::kAuto:
    case SimdTier::kScalar:
      break;
  }
  return ProfPhase::kFsimWideKernelScalar;
}

const char* prof_counter_name(ProfCounter c) {
  switch (c) {
    case ProfCounter::kTaskClockNs:
      return "task_clock_ns";
    case ProfCounter::kCycles:
      return "cycles";
    case ProfCounter::kInstructions:
      return "instructions";
    case ProfCounter::kCacheReferences:
      return "cache_references";
    case ProfCounter::kCacheMisses:
      return "cache_misses";
    case ProfCounter::kBranchMisses:
      return "branch_misses";
  }
  return "?";
}

const char* prof_backend_name(ProfBackend b) {
  switch (b) {
    case ProfBackend::kOff:
      return "off";
    case ProfBackend::kPerfEvent:
      return "perf_event";
    case ProfBackend::kFallback:
      return "fallback";
  }
  return "?";
}

Profiler& Profiler::global() {
  static Profiler p;
  return p;
}

void Profiler::start(const Options& opts) {
  stop();  // idempotence: a dangling previous session is closed first
  for (Lane& lane : lanes_)
    for (Lane::Phase& ph : lane.phases) {
      ph.calls.store(0, std::memory_order_relaxed);
      for (auto& c : ph.counters) c.store(0, std::memory_order_relaxed);
    }
  {
    std::lock_guard<std::mutex> lock(samples_mu_);
    samples_.clear();
    samples_dropped_ = 0;
  }
  wall_seconds_ = 0.0;

  // Backend ladder: the env pin wins, then a live probe on this thread.
  // "perf" requests the perf backend but still degrades — arming the
  // profiler must never fail a run.
  ProfBackend backend = ProfBackend::kFallback;
  const char* env = std::getenv("SATPG_PROFILE_BACKEND");
  const bool pinned_fallback =
      env != nullptr && std::strcmp(env, "fallback") == 0;
  if (!pinned_fallback && perf_backend_usable())
    backend = ProfBackend::kPerfEvent;
  backend_.store(static_cast<std::uint8_t>(backend),
                 std::memory_order_relaxed);

  epoch_ = std::chrono::steady_clock::now();
  if (opts.sample_interval_ms > 0) {
    sampler_stop_.store(false, std::memory_order_relaxed);
    sampler_ = std::thread(&Profiler::sampler_loop, this,
                           opts.sample_interval_ms, opts.max_samples);
  }
  detail::g_profiler_enabled.store(true, std::memory_order_relaxed);
}

void Profiler::stop() {
  const bool was_enabled =
      detail::g_profiler_enabled.exchange(false, std::memory_order_relaxed);
  if (sampler_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sampler_mu_);
      sampler_stop_.store(true, std::memory_order_relaxed);
    }
    sampler_cv_.notify_all();
    sampler_.join();
  }
  if (was_enabled)
    wall_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_)
            .count();
}

void Profiler::read_thread_counters(std::uint64_t* vals) {
  vals[static_cast<std::size_t>(ProfCounter::kTaskClockNs)] =
      thread_cpu_ns();
  std::uint64_t hw[kNumPerfEvents] = {};
  if (backend() == ProfBackend::kPerfEvent) read_perf_group(hw);
  for (std::size_t i = 0; i < kNumPerfEvents; ++i)
    vals[static_cast<std::size_t>(ProfCounter::kCycles) + i] = hw[i];
}

void Profiler::accumulate(ProfPhase phase, const std::uint64_t* deltas) {
  unsigned lane = telemetry_thread_index();
  if (lane >= kMaxLanes) lane = kMaxLanes - 1;  // foreign/overflow lane
  Lane::Phase& ph =
      lanes_[lane].phases[static_cast<std::size_t>(phase)];
  ph.calls.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t c = 0; c < kNumProfCounters; ++c)
    if (deltas[c] != 0)
      ph.counters[c].fetch_add(deltas[c], std::memory_order_relaxed);
}

void Profiler::sampler_loop(std::uint64_t interval_ms,
                            std::uint64_t max_samples) {
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_.load(std::memory_order_relaxed)) {
    sampler_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms));
    if (sampler_stop_.load(std::memory_order_relaxed)) break;
    ProfSnapshot::Sample s;
    s.at_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
    for (const Lane& lane : lanes_)
      for (const Lane::Phase& ph : lane.phases) {
        s.task_clock_ns += ph.counters[static_cast<std::size_t>(
                                           ProfCounter::kTaskClockNs)]
                               .load(std::memory_order_relaxed);
        s.cycles +=
            ph.counters[static_cast<std::size_t>(ProfCounter::kCycles)]
                .load(std::memory_order_relaxed);
      }
    std::lock_guard<std::mutex> slock(samples_mu_);
    if (samples_.size() < max_samples)
      samples_.push_back(s);
    else
      ++samples_dropped_;
  }
}

ProfSnapshot Profiler::snapshot() const {
  ProfSnapshot snap;
  snap.backend = backend();
  snap.wall_seconds = wall_seconds_;
  for (std::size_t l = 0; l < kMaxLanes; ++l) {
    const Lane& lane = lanes_[l];
    ProfSnapshot::Lane out;
    out.lane = static_cast<unsigned>(l);
    bool any = false;
    for (std::size_t p = 0; p < kNumProfPhases; ++p) {
      const Lane::Phase& ph = lane.phases[p];
      ProfPhaseTotals& t = out.phases[p];
      t.calls = ph.calls.load(std::memory_order_relaxed);
      if (t.calls != 0) any = true;
      for (std::size_t c = 0; c < kNumProfCounters; ++c)
        t.counters[c] = ph.counters[c].load(std::memory_order_relaxed);
    }
    if (any) snap.lanes.push_back(out);
  }
  {
    std::lock_guard<std::mutex> lock(samples_mu_);
    snap.samples = samples_;
    snap.samples_dropped = samples_dropped_;
  }
  return snap;
}

ProfPhaseTotals ProfSnapshot::phase(ProfPhase p) const {
  ProfPhaseTotals t;
  for (const Lane& lane : lanes)
    t.add(lane.phases[static_cast<std::size_t>(p)]);
  return t;
}

ProfPhaseTotals ProfSnapshot::total() const {
  ProfPhaseTotals t;
  for (const Lane& lane : lanes)
    for (const ProfPhaseTotals& ph : lane.phases) t.add(ph);
  return t;
}

void ProfileSpan::end() {
  std::uint64_t now[kNumProfCounters];
  Profiler::global().read_thread_counters(now);
  std::uint64_t deltas[kNumProfCounters];
  for (std::size_t c = 0; c < kNumProfCounters; ++c)
    deltas[c] = now[c] >= at_[c] ? now[c] - at_[c] : 0;
  Profiler::global().accumulate(phase_, deltas);
}

}  // namespace satpg
