// Low-overhead, thread-aware metrics registry.
//
// A process-wide registry of named counters, gauges, and histograms that
// the engines update from hot paths. Design constraints, in order:
//
//   * Near-zero cost when disabled: every mutation starts with one relaxed
//     atomic load of the global enable flag and returns immediately when it
//     is off — no stores, no allocation, no registry growth from hot paths.
//     The flag defaults to off; `--metrics-json` (CLI / harness) turns it on.
//   * Thread-aware sharding: mutations land in per-thread slots (indexed by
//     `telemetry_thread_index()`, cacheline-padded) so ThreadPool workers
//     never contend on a shared counter word. Shards are merged at report
//     time in fixed slot order — the same merge-order discipline as
//     `atpg/parallel` — so a read is a pure function of what was recorded.
//   * Deterministic reports: everything the registry stores is a sum, a
//     bucket count, or an extremum — all order-independent — and
//     `write_json` iterates names in sorted order. A run that records only
//     thread-count-invariant quantities (see DESIGN.md §5) therefore dumps
//     byte-identical JSON at any `--threads` value. Wall-clock quantities
//     belong in the trace (`base/trace.h`), never in the registry.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// process lifetime; hot call sites cache them in function-local statics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace satpg {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}

/// Global on/off switch; mutations are dropped while off.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);

/// Reserved telemetry index of the process main thread (claimed during
/// static initialization, before any worker can exist).
inline constexpr unsigned kMainThreadIndex = 0;
/// Sentinel index for threads that never registered — e.g. a caller-owned
/// std::thread outside the ThreadPool. Such threads still shard metrics
/// deterministically (sentinel % kShards) but render as "t?" in log lines.
inline constexpr unsigned kForeignThreadIndex = ~0u;

/// Small dense per-thread index shared by metrics sharding, trace lanes,
/// and log-line tagging: kMainThreadIndex for the main thread, 1.. for
/// registered workers, kForeignThreadIndex for everything else.
unsigned telemetry_thread_index();

/// Claim a dense worker index (>= 1) for the calling thread; idempotent —
/// an already-registered thread (including main) keeps its index. Called by
/// ThreadPool's worker loop; foreign threads may call it to opt in.
unsigned telemetry_register_worker();

class MetricsRegistry {
 public:
  static constexpr std::size_t kShards = 16;

  /// Monotonic sum. add() is wait-free: one relaxed fetch_add into the
  /// caller's shard.
  class Counter {
   public:
    void add(std::uint64_t n = 1) {
      if (!metrics_enabled()) return;
      shards_[telemetry_thread_index() % kShards].v.fetch_add(
          n, std::memory_order_relaxed);
    }
    /// Shards merged in slot order 0..kShards-1.
    std::uint64_t total() const;
    void reset();

   private:
    struct alignas(64) Slot {
      std::atomic<std::uint64_t> v{0};
    };
    std::array<Slot, kShards> shards_;
  };

  /// Last-set value. Single-writer by convention (the orchestrating
  /// thread); a multi-writer gauge would be scheduling-dependent and has
  /// no place in a deterministic report.
  class Gauge {
   public:
    void set(double v) {
      if (!metrics_enabled()) return;
      v_.store(v, std::memory_order_relaxed);
    }
    double value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

   private:
    std::atomic<double> v_{0.0};
  };

  /// Power-of-two histogram over uint64 samples: bucket 0 holds value 0,
  /// bucket b >= 1 holds [2^(b-1), 2^b). Count/sum/min/max ride along.
  class Histogram {
   public:
    static constexpr std::size_t kBuckets = 65;

    void record(std::uint64_t v) {
      if (!metrics_enabled()) return;
      record_always(v);
    }
    std::uint64_t count() const;
    std::uint64_t sum() const;
    std::uint64_t min() const;  ///< 0 when empty
    std::uint64_t max() const;
    std::uint64_t bucket(std::size_t b) const;
    void reset();

    static unsigned bucket_of(std::uint64_t v) {
      return v == 0 ? 0u
                    : static_cast<unsigned>(64 - __builtin_clzll(v));
    }

   private:
    void record_always(std::uint64_t v);
    struct alignas(64) Shard {
      std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
      std::atomic<std::uint64_t> count{0};
      std::atomic<std::uint64_t> sum{0};
      std::atomic<std::uint64_t> min{UINT64_MAX};
      std::atomic<std::uint64_t> max{0};
    };
    std::array<Shard, kShards> shards_;
  };

  /// Find-or-create by name. Returned references stay valid for the
  /// registry's lifetime. Names are dot-separated lowercase
  /// ("atpg.backtracks"); registration takes a mutex — do it once per call
  /// site, not per event.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every metric (names stay registered). Used between runs that
  /// must produce independent reports.
  void reset();

  /// Deterministic dump: names sorted, shards merged in slot order,
  /// integers only except gauges. See header comment for the
  /// thread-count-invariance contract.
  void write_json(std::ostream& os, int indent = 0) const;
  std::string to_json() const;

  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;  ///< guards the maps, not the metric storage
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace satpg
