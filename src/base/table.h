// ASCII table printer.
//
// The benches regenerate the paper's tables; this gives them a uniform,
// aligned rendering (header row, separator, right-aligned numeric cells).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace satpg {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment. Cells that parse as numbers are
  /// right-aligned, text cells left-aligned.
  std::string to_string() const;

  /// Machine-readable form: {"headers": [...], "rows": [[...], ...]} with
  /// every cell a JSON string (cells keep their printed formatting).
  std::string to_json() const;

  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace satpg
