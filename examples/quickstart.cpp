// Quickstart: build a small sequential circuit with the netlist API, run
// the HITEC-style sequential ATPG on it, and print the generated tests.
//
//   $ ./quickstart
//
// The circuit is a 2-bit saturating counter with an enable input and an
// explicit synchronous reset — the same shape (control logic + reset line)
// as the study's circuits.
#include <cstdio>

#include "atpg/engine.h"
#include "fault/fault.h"
#include "netlist/netlist.h"
#include "sim/value.h"

using namespace satpg;

namespace {

Netlist build_counter() {
  Netlist nl("satcnt2");
  const NodeId en = nl.add_input("en");
  const NodeId rst = nl.add_input("rst");

  // Flip-flops created against a placeholder driver, wired below.
  const NodeId q0 = nl.add_dff("q0", en, FfInit::kUnknown);
  const NodeId q1 = nl.add_dff("q1", en, FfInit::kUnknown);

  // Saturating increment: stop at 11.
  const NodeId at_max = nl.add_gate(GateType::kAnd, "at_max", {q0, q1});
  const NodeId n_at_max = nl.add_gate(GateType::kNot, "n_at_max", {at_max});
  const NodeId bump = nl.add_gate(GateType::kAnd, "bump", {en, n_at_max});
  const NodeId d0 = nl.add_gate(GateType::kXor, "d0", {q0, bump});
  const NodeId carry = nl.add_gate(GateType::kAnd, "carry", {q0, bump});
  const NodeId d1 = nl.add_gate(GateType::kXor, "d1", {q1, carry});

  // Synchronous reset forces 00.
  const NodeId nrst = nl.add_gate(GateType::kNot, "nrst", {rst});
  const NodeId rd0 = nl.add_gate(GateType::kAnd, "rd0", {d0, nrst});
  const NodeId rd1 = nl.add_gate(GateType::kAnd, "rd1", {d1, nrst});
  nl.set_fanin(q0, 0, rd0);
  nl.set_fanin(q1, 0, rd1);

  nl.add_output("saturated", at_max);
  return nl;
}

}  // namespace

int main() {
  const Netlist nl = build_counter();
  std::printf("circuit %s: %zu gates, %zu DFFs, %zu faults (collapsed %zu)\n",
              nl.name().c_str(), nl.num_gates(), nl.num_dffs(),
              enumerate_faults(nl).size(), collapse_faults(nl).size());

  AtpgRunOptions opts;
  opts.engine.kind = EngineKind::kHitec;
  const AtpgRunResult run = run_atpg(nl, opts);

  std::printf("fault coverage  : %.1f%%\n", run.fault_coverage);
  std::printf("fault efficiency: %.1f%%\n", run.fault_efficiency);
  std::printf("work            : %llu node evaluations, %llu backtracks\n",
              static_cast<unsigned long long>(run.evals),
              static_cast<unsigned long long>(run.backtracks));
  std::printf("test sequences  : %zu\n", run.tests.size());

  // Print the first few sequences; inputs are in nl.inputs() order (en,
  // rst).
  int shown = 0;
  for (const auto& seq : run.tests) {
    if (++shown > 3) break;
    std::printf("  sequence %d (%zu cycles): en,rst =", shown, seq.size());
    for (const auto& vec : seq)
      std::printf(" %c%c", v3_char(vec[0]), v3_char(vec[1]));
    std::printf("\n");
  }
  std::printf("states traversed by the test set: %zu\n",
              run.states_traversed.size());
  return 0;
}
