// The paper's experiment in miniature: synthesize one control FSM, retime
// it, and watch test generation get harder while sequential depth and
// cycle structure stay put — but density of encoding collapses.
//
//   $ ./retiming_study [fsm-name]     (default: s820, scaled down for speed)
#include <cstdio>
#include <string>

#include "analysis/reach.h"
#include "analysis/structure.h"
#include "atpg/engine.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "synth/synthesize.h"
#include "synth/techmap.h"

using namespace satpg;

namespace {

void report(const Netlist& nl) {
  const auto depth = max_sequential_depth(nl);
  const auto cycles = count_cycles(nl);
  const auto reach = compute_reachable(nl);
  AtpgRunOptions opts;
  const auto run = run_atpg(nl, opts);

  std::printf("%-18s #DFF=%-3zu delay=%-6.2f\n", nl.name().c_str(),
              nl.num_dffs(), critical_path_delay(nl));
  std::printf("  structure : max seq depth=%d%s  max cycle len=%d  "
              "#cycles=%d%s\n",
              depth.max_depth, depth.saturated ? "+" : "",
              cycles.max_cycle_length, cycles.num_cycles,
              cycles.saturated ? "+" : "");
  std::printf("  state space: valid=%.0f of %.3g  density=%.3g\n",
              reach.num_valid, reach.total_states, reach.density);
  std::printf("  ATPG      : FC=%.1f%% FE=%.1f%% work=%llu evals "
              "(%zu states traversed)\n\n",
              run.fault_coverage, run.fault_efficiency,
              static_cast<unsigned long long>(run.evals),
              run.states_traversed.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s820";
  FsmGenSpec spec;
  bool found = false;
  for (const auto& s : mcnc_specs())
    if (s.name == name) {
      spec = s;
      found = true;
    }
  if (!found) {
    std::fprintf(stderr, "unknown FSM '%s'\n", name.c_str());
    return 2;
  }

  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.6));
  SynthOptions so;
  so.encode = EncodeAlgo::kOutputDominant;
  so.script = ScriptKind::kDelay;
  const SynthResult res = synthesize(fsm, so);

  std::printf("== original circuit ==\n");
  report(res.netlist);

  const RetimeResult rt = retime_to_dff_target(
      res.netlist, 3 * res.netlist.num_dffs(), res.name + ".re");
  std::printf("== retimed circuit (register scatter, same function) ==\n");
  report(rt.netlist);

  std::printf("The retimed machine implements the same FSM with identical\n"
              "sequential depth and cycle lengths; only the density of\n"
              "encoding changed — and with it the ATPG effort.\n");
  return 0;
}
