// Density of encoding as a direct knob: the same FSM synthesized with
// minimum-bit encoders and with one-hot encoding. No retiming involved —
// the sparser the encoding, the harder the structural ATPG has to work,
// which is the paper's central claim stripped to its essence.
//
//   $ ./density_sweep
#include <cstdio>

#include "analysis/reach.h"
#include "atpg/engine.h"
#include "fsm/mcnc_suite.h"
#include "synth/synthesize.h"

using namespace satpg;

int main() {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.7));
  std::printf("machine: %d states, %d inputs, %d outputs\n\n",
              fsm.num_states(), fsm.num_inputs(), fsm.num_outputs());

  std::printf("%-14s %5s %8s %12s %10s %7s %7s %12s\n", "encoding", "#DFF",
              "#valid", "total", "density", "%FC", "%FE", "work (evals)");
  for (const EncodeAlgo algo :
       {EncodeAlgo::kNatural, EncodeAlgo::kInputDominant,
        EncodeAlgo::kOutputDominant, EncodeAlgo::kCombined,
        EncodeAlgo::kOneHot}) {
    SynthOptions so;
    so.encode = algo;
    const SynthResult res = synthesize(fsm, so);
    const auto reach = compute_reachable(res.netlist);
    AtpgRunOptions opts;
    const auto run = run_atpg(res.netlist, opts);
    std::printf("%-14s %5zu %8.0f %12.4g %10.2e %7.1f %7.1f %12llu\n",
                encode_algo_suffix(algo), res.netlist.num_dffs(),
                reach.num_valid, reach.total_states, reach.density,
                run.fault_coverage, run.fault_efficiency,
                static_cast<unsigned long long>(run.evals));
  }
  std::printf(
      "\nOne-hot leaves almost the whole state space invalid; watch the\n"
      "work column track the density column, not the gate count.\n");
  return 0;
}
