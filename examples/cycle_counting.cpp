// The paper's Figure 2, executable: why cycle-counting algorithms report
// MORE cycles after retiming even though retiming provably creates none
// (Theorem 3). The backward atomic move splits flip-flop Q1 into Q1a/Q1b
// on the two branches into gate G3; the census — which counts one cycle per
// unique DFF subset — then sees two subsets where it saw one.
//
//   $ ./cycle_counting
#include <cstdio>

#include "analysis/structure.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "retime/retime.h"

using namespace satpg;

namespace {

Netlist figure2_circuit() {
  Netlist nl("fig2");
  const NodeId a = nl.add_input("a");
  const NodeId q2 = nl.add_dff("Q2", a, FfInit::kZero);
  const NodeId g1 = nl.add_gate(GateType::kAnd, "G1", {q2, a});
  const NodeId gnot = nl.add_gate(GateType::kNot, "Gnot", {q2});
  const NodeId g2 = nl.add_gate(GateType::kAnd, "G2", {gnot, a});
  const NodeId g3 = nl.add_gate(GateType::kOr, "G3", {g1, g2});
  const NodeId q1 = nl.add_dff("Q1", g3, FfInit::kZero);
  const NodeId gbuf = nl.add_gate(GateType::kBuf, "Gbuf", {q1});
  nl.set_fanin(q2, 0, gbuf);
  nl.add_output("o", gbuf);
  return nl;
}

void report(const char* tag, const Netlist& nl) {
  const auto census = count_cycles(nl);
  const auto depth = max_sequential_depth(nl);
  std::printf("%s: #DFF=%zu  #cycles=%d  max cycle length=%d  "
              "max seq depth=%d\n",
              tag, nl.num_dffs(), census.num_cycles,
              census.max_cycle_length, depth.max_depth);
}

}  // namespace

int main() {
  Netlist before = figure2_circuit();
  std::printf("Figure 2 circuit (before retiming):\n\n%s\n",
              write_bench_string(before).c_str());
  report("before", before);

  Netlist after = before.clone("fig2.re");
  const NodeId g3 = after.find("G3");
  if (!can_move_backward(after, g3)) {
    std::fprintf(stderr, "unexpected: atomic move not applicable\n");
    return 1;
  }
  move_backward(after, g3);
  std::printf("\nAfter moving Q1 backward across G3:\n\n%s\n",
              write_bench_string(after).c_str());
  report("after ", after);

  std::printf(
      "\nThe counted cycles went up purely because Q1 became two\n"
      "flip-flops on parallel branches — the circuit's actual cycle\n"
      "structure (and its sequential depth) did not change.\n");
  return 0;
}
