# Empty dependencies file for retiming_study.
# This may be replaced when dependencies are built.
