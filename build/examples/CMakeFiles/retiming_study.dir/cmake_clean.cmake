file(REMOVE_RECURSE
  "CMakeFiles/retiming_study.dir/retiming_study.cpp.o"
  "CMakeFiles/retiming_study.dir/retiming_study.cpp.o.d"
  "retiming_study"
  "retiming_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retiming_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
