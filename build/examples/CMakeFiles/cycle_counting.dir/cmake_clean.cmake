file(REMOVE_RECURSE
  "CMakeFiles/cycle_counting.dir/cycle_counting.cpp.o"
  "CMakeFiles/cycle_counting.dir/cycle_counting.cpp.o.d"
  "cycle_counting"
  "cycle_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
