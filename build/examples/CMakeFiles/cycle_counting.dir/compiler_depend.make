# Empty compiler generated dependencies file for cycle_counting.
# This may be replaced when dependencies are built.
