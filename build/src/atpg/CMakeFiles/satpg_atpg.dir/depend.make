# Empty dependencies file for satpg_atpg.
# This may be replaced when dependencies are built.
