
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/compact.cpp" "src/atpg/CMakeFiles/satpg_atpg.dir/compact.cpp.o" "gcc" "src/atpg/CMakeFiles/satpg_atpg.dir/compact.cpp.o.d"
  "/root/repo/src/atpg/engine.cpp" "src/atpg/CMakeFiles/satpg_atpg.dir/engine.cpp.o" "gcc" "src/atpg/CMakeFiles/satpg_atpg.dir/engine.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/atpg/CMakeFiles/satpg_atpg.dir/podem.cpp.o" "gcc" "src/atpg/CMakeFiles/satpg_atpg.dir/podem.cpp.o.d"
  "/root/repo/src/atpg/scoap.cpp" "src/atpg/CMakeFiles/satpg_atpg.dir/scoap.cpp.o" "gcc" "src/atpg/CMakeFiles/satpg_atpg.dir/scoap.cpp.o.d"
  "/root/repo/src/atpg/tfm.cpp" "src/atpg/CMakeFiles/satpg_atpg.dir/tfm.cpp.o" "gcc" "src/atpg/CMakeFiles/satpg_atpg.dir/tfm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/satpg_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/fsim/CMakeFiles/satpg_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satpg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/satpg_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/satpg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
