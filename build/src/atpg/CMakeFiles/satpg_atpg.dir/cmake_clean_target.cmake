file(REMOVE_RECURSE
  "libsatpg_atpg.a"
)
