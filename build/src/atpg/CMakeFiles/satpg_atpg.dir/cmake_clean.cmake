file(REMOVE_RECURSE
  "CMakeFiles/satpg_atpg.dir/compact.cpp.o"
  "CMakeFiles/satpg_atpg.dir/compact.cpp.o.d"
  "CMakeFiles/satpg_atpg.dir/engine.cpp.o"
  "CMakeFiles/satpg_atpg.dir/engine.cpp.o.d"
  "CMakeFiles/satpg_atpg.dir/podem.cpp.o"
  "CMakeFiles/satpg_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/satpg_atpg.dir/scoap.cpp.o"
  "CMakeFiles/satpg_atpg.dir/scoap.cpp.o.d"
  "CMakeFiles/satpg_atpg.dir/tfm.cpp.o"
  "CMakeFiles/satpg_atpg.dir/tfm.cpp.o.d"
  "libsatpg_atpg.a"
  "libsatpg_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
