file(REMOVE_RECURSE
  "CMakeFiles/satpg_dft.dir/scan.cpp.o"
  "CMakeFiles/satpg_dft.dir/scan.cpp.o.d"
  "libsatpg_dft.a"
  "libsatpg_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
