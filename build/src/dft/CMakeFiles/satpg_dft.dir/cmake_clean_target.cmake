file(REMOVE_RECURSE
  "libsatpg_dft.a"
)
