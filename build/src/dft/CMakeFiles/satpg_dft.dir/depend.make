# Empty dependencies file for satpg_dft.
# This may be replaced when dependencies are built.
