file(REMOVE_RECURSE
  "libsatpg_analysis.a"
)
