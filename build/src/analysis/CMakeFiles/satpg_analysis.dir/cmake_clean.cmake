file(REMOVE_RECURSE
  "CMakeFiles/satpg_analysis.dir/bddcircuit.cpp.o"
  "CMakeFiles/satpg_analysis.dir/bddcircuit.cpp.o.d"
  "CMakeFiles/satpg_analysis.dir/reach.cpp.o"
  "CMakeFiles/satpg_analysis.dir/reach.cpp.o.d"
  "CMakeFiles/satpg_analysis.dir/seqec.cpp.o"
  "CMakeFiles/satpg_analysis.dir/seqec.cpp.o.d"
  "CMakeFiles/satpg_analysis.dir/srf.cpp.o"
  "CMakeFiles/satpg_analysis.dir/srf.cpp.o.d"
  "CMakeFiles/satpg_analysis.dir/structure.cpp.o"
  "CMakeFiles/satpg_analysis.dir/structure.cpp.o.d"
  "libsatpg_analysis.a"
  "libsatpg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
