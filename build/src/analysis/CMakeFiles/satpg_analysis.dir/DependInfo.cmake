
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bddcircuit.cpp" "src/analysis/CMakeFiles/satpg_analysis.dir/bddcircuit.cpp.o" "gcc" "src/analysis/CMakeFiles/satpg_analysis.dir/bddcircuit.cpp.o.d"
  "/root/repo/src/analysis/reach.cpp" "src/analysis/CMakeFiles/satpg_analysis.dir/reach.cpp.o" "gcc" "src/analysis/CMakeFiles/satpg_analysis.dir/reach.cpp.o.d"
  "/root/repo/src/analysis/seqec.cpp" "src/analysis/CMakeFiles/satpg_analysis.dir/seqec.cpp.o" "gcc" "src/analysis/CMakeFiles/satpg_analysis.dir/seqec.cpp.o.d"
  "/root/repo/src/analysis/srf.cpp" "src/analysis/CMakeFiles/satpg_analysis.dir/srf.cpp.o" "gcc" "src/analysis/CMakeFiles/satpg_analysis.dir/srf.cpp.o.d"
  "/root/repo/src/analysis/structure.cpp" "src/analysis/CMakeFiles/satpg_analysis.dir/structure.cpp.o" "gcc" "src/analysis/CMakeFiles/satpg_analysis.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/satpg_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/satpg_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/satpg_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/retime/CMakeFiles/satpg_retime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satpg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/satpg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
