# Empty compiler generated dependencies file for satpg_analysis.
# This may be replaced when dependencies are built.
