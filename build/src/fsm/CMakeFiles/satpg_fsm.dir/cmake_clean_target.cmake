file(REMOVE_RECURSE
  "libsatpg_fsm.a"
)
