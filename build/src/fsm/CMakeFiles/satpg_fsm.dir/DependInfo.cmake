
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/fsm.cpp" "src/fsm/CMakeFiles/satpg_fsm.dir/fsm.cpp.o" "gcc" "src/fsm/CMakeFiles/satpg_fsm.dir/fsm.cpp.o.d"
  "/root/repo/src/fsm/kiss_io.cpp" "src/fsm/CMakeFiles/satpg_fsm.dir/kiss_io.cpp.o" "gcc" "src/fsm/CMakeFiles/satpg_fsm.dir/kiss_io.cpp.o.d"
  "/root/repo/src/fsm/mcnc_suite.cpp" "src/fsm/CMakeFiles/satpg_fsm.dir/mcnc_suite.cpp.o" "gcc" "src/fsm/CMakeFiles/satpg_fsm.dir/mcnc_suite.cpp.o.d"
  "/root/repo/src/fsm/minimize.cpp" "src/fsm/CMakeFiles/satpg_fsm.dir/minimize.cpp.o" "gcc" "src/fsm/CMakeFiles/satpg_fsm.dir/minimize.cpp.o.d"
  "/root/repo/src/fsm/stg_extract.cpp" "src/fsm/CMakeFiles/satpg_fsm.dir/stg_extract.cpp.o" "gcc" "src/fsm/CMakeFiles/satpg_fsm.dir/stg_extract.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/satpg_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satpg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/satpg_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
