file(REMOVE_RECURSE
  "CMakeFiles/satpg_fsm.dir/fsm.cpp.o"
  "CMakeFiles/satpg_fsm.dir/fsm.cpp.o.d"
  "CMakeFiles/satpg_fsm.dir/kiss_io.cpp.o"
  "CMakeFiles/satpg_fsm.dir/kiss_io.cpp.o.d"
  "CMakeFiles/satpg_fsm.dir/mcnc_suite.cpp.o"
  "CMakeFiles/satpg_fsm.dir/mcnc_suite.cpp.o.d"
  "CMakeFiles/satpg_fsm.dir/minimize.cpp.o"
  "CMakeFiles/satpg_fsm.dir/minimize.cpp.o.d"
  "CMakeFiles/satpg_fsm.dir/stg_extract.cpp.o"
  "CMakeFiles/satpg_fsm.dir/stg_extract.cpp.o.d"
  "libsatpg_fsm.a"
  "libsatpg_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
