# Empty compiler generated dependencies file for satpg_fsm.
# This may be replaced when dependencies are built.
