file(REMOVE_RECURSE
  "CMakeFiles/satpg_bdd.dir/bdd.cpp.o"
  "CMakeFiles/satpg_bdd.dir/bdd.cpp.o.d"
  "libsatpg_bdd.a"
  "libsatpg_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
