# Empty dependencies file for satpg_bdd.
# This may be replaced when dependencies are built.
