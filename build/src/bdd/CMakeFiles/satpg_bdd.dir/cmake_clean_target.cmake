file(REMOVE_RECURSE
  "libsatpg_bdd.a"
)
