# Empty dependencies file for satpg_fault.
# This may be replaced when dependencies are built.
