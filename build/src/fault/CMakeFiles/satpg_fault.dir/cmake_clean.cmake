file(REMOVE_RECURSE
  "CMakeFiles/satpg_fault.dir/fault.cpp.o"
  "CMakeFiles/satpg_fault.dir/fault.cpp.o.d"
  "libsatpg_fault.a"
  "libsatpg_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
