file(REMOVE_RECURSE
  "libsatpg_fault.a"
)
