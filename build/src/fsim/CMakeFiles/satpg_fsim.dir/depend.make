# Empty dependencies file for satpg_fsim.
# This may be replaced when dependencies are built.
