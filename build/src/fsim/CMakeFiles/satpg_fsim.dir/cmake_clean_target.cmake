file(REMOVE_RECURSE
  "libsatpg_fsim.a"
)
