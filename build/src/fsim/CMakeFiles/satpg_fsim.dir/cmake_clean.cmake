file(REMOVE_RECURSE
  "CMakeFiles/satpg_fsim.dir/fsim.cpp.o"
  "CMakeFiles/satpg_fsim.dir/fsim.cpp.o.d"
  "libsatpg_fsim.a"
  "libsatpg_fsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
