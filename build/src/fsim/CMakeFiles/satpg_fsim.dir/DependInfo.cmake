
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsim/fsim.cpp" "src/fsim/CMakeFiles/satpg_fsim.dir/fsim.cpp.o" "gcc" "src/fsim/CMakeFiles/satpg_fsim.dir/fsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/satpg_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satpg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/satpg_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/satpg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
