# Empty dependencies file for satpg_base.
# This may be replaced when dependencies are built.
