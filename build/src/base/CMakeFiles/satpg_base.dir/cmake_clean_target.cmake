file(REMOVE_RECURSE
  "libsatpg_base.a"
)
