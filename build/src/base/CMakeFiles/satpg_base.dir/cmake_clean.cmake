file(REMOVE_RECURSE
  "CMakeFiles/satpg_base.dir/bitvec.cpp.o"
  "CMakeFiles/satpg_base.dir/bitvec.cpp.o.d"
  "CMakeFiles/satpg_base.dir/logging.cpp.o"
  "CMakeFiles/satpg_base.dir/logging.cpp.o.d"
  "CMakeFiles/satpg_base.dir/strutil.cpp.o"
  "CMakeFiles/satpg_base.dir/strutil.cpp.o.d"
  "CMakeFiles/satpg_base.dir/table.cpp.o"
  "CMakeFiles/satpg_base.dir/table.cpp.o.d"
  "libsatpg_base.a"
  "libsatpg_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
