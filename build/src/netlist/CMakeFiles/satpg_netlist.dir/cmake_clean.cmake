file(REMOVE_RECURSE
  "CMakeFiles/satpg_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/satpg_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/satpg_netlist.dir/netlist.cpp.o"
  "CMakeFiles/satpg_netlist.dir/netlist.cpp.o.d"
  "libsatpg_netlist.a"
  "libsatpg_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
