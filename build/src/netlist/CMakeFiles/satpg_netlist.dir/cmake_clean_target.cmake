file(REMOVE_RECURSE
  "libsatpg_netlist.a"
)
