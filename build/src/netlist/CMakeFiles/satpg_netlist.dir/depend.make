# Empty dependencies file for satpg_netlist.
# This may be replaced when dependencies are built.
