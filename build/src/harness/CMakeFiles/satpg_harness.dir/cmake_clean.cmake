file(REMOVE_RECURSE
  "CMakeFiles/satpg_harness.dir/experiments.cpp.o"
  "CMakeFiles/satpg_harness.dir/experiments.cpp.o.d"
  "CMakeFiles/satpg_harness.dir/extensions.cpp.o"
  "CMakeFiles/satpg_harness.dir/extensions.cpp.o.d"
  "CMakeFiles/satpg_harness.dir/suite.cpp.o"
  "CMakeFiles/satpg_harness.dir/suite.cpp.o.d"
  "libsatpg_harness.a"
  "libsatpg_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
