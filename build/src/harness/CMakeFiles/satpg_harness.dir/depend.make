# Empty dependencies file for satpg_harness.
# This may be replaced when dependencies are built.
