file(REMOVE_RECURSE
  "libsatpg_harness.a"
)
