file(REMOVE_RECURSE
  "libsatpg_retime.a"
)
