file(REMOVE_RECURSE
  "CMakeFiles/satpg_retime.dir/retime.cpp.o"
  "CMakeFiles/satpg_retime.dir/retime.cpp.o.d"
  "libsatpg_retime.a"
  "libsatpg_retime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_retime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
