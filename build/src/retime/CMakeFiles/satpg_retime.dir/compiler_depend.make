# Empty compiler generated dependencies file for satpg_retime.
# This may be replaced when dependencies are built.
