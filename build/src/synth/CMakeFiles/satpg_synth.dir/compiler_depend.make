# Empty compiler generated dependencies file for satpg_synth.
# This may be replaced when dependencies are built.
