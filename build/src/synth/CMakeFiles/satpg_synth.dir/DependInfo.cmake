
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/cover.cpp" "src/synth/CMakeFiles/satpg_synth.dir/cover.cpp.o" "gcc" "src/synth/CMakeFiles/satpg_synth.dir/cover.cpp.o.d"
  "/root/repo/src/synth/encode.cpp" "src/synth/CMakeFiles/satpg_synth.dir/encode.cpp.o" "gcc" "src/synth/CMakeFiles/satpg_synth.dir/encode.cpp.o.d"
  "/root/repo/src/synth/library.cpp" "src/synth/CMakeFiles/satpg_synth.dir/library.cpp.o" "gcc" "src/synth/CMakeFiles/satpg_synth.dir/library.cpp.o.d"
  "/root/repo/src/synth/scripts.cpp" "src/synth/CMakeFiles/satpg_synth.dir/scripts.cpp.o" "gcc" "src/synth/CMakeFiles/satpg_synth.dir/scripts.cpp.o.d"
  "/root/repo/src/synth/synthesize.cpp" "src/synth/CMakeFiles/satpg_synth.dir/synthesize.cpp.o" "gcc" "src/synth/CMakeFiles/satpg_synth.dir/synthesize.cpp.o.d"
  "/root/repo/src/synth/techmap.cpp" "src/synth/CMakeFiles/satpg_synth.dir/techmap.cpp.o" "gcc" "src/synth/CMakeFiles/satpg_synth.dir/techmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/satpg_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/satpg_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satpg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/satpg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
