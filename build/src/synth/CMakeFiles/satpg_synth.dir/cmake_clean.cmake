file(REMOVE_RECURSE
  "CMakeFiles/satpg_synth.dir/cover.cpp.o"
  "CMakeFiles/satpg_synth.dir/cover.cpp.o.d"
  "CMakeFiles/satpg_synth.dir/encode.cpp.o"
  "CMakeFiles/satpg_synth.dir/encode.cpp.o.d"
  "CMakeFiles/satpg_synth.dir/library.cpp.o"
  "CMakeFiles/satpg_synth.dir/library.cpp.o.d"
  "CMakeFiles/satpg_synth.dir/scripts.cpp.o"
  "CMakeFiles/satpg_synth.dir/scripts.cpp.o.d"
  "CMakeFiles/satpg_synth.dir/synthesize.cpp.o"
  "CMakeFiles/satpg_synth.dir/synthesize.cpp.o.d"
  "CMakeFiles/satpg_synth.dir/techmap.cpp.o"
  "CMakeFiles/satpg_synth.dir/techmap.cpp.o.d"
  "libsatpg_synth.a"
  "libsatpg_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
