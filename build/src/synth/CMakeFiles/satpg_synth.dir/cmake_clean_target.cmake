file(REMOVE_RECURSE
  "libsatpg_synth.a"
)
