file(REMOVE_RECURSE
  "CMakeFiles/satpg_sim.dir/simulator.cpp.o"
  "CMakeFiles/satpg_sim.dir/simulator.cpp.o.d"
  "libsatpg_sim.a"
  "libsatpg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
