# Empty dependencies file for satpg_sim.
# This may be replaced when dependencies are built.
