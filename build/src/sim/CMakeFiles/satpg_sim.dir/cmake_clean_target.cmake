file(REMOVE_RECURSE
  "libsatpg_sim.a"
)
