# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/fsm_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/retime_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/fsim_test[1]_include.cmake")
include("/root/repo/build/tests/atpg_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/dft_test[1]_include.cmake")
include("/root/repo/build/tests/srf_seqec_test[1]_include.cmake")
include("/root/repo/build/tests/compact_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/scoap_test[1]_include.cmake")
include("/root/repo/build/tests/tfm_stress_test[1]_include.cmake")
include("/root/repo/build/tests/stg_minimize_test[1]_include.cmake")
