file(REMOVE_RECURSE
  "CMakeFiles/srf_seqec_test.dir/srf_seqec_test.cpp.o"
  "CMakeFiles/srf_seqec_test.dir/srf_seqec_test.cpp.o.d"
  "srf_seqec_test"
  "srf_seqec_test.pdb"
  "srf_seqec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srf_seqec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
