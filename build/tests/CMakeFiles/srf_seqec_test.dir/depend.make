# Empty dependencies file for srf_seqec_test.
# This may be replaced when dependencies are built.
