# Empty compiler generated dependencies file for tfm_stress_test.
# This may be replaced when dependencies are built.
