file(REMOVE_RECURSE
  "CMakeFiles/tfm_stress_test.dir/tfm_stress_test.cpp.o"
  "CMakeFiles/tfm_stress_test.dir/tfm_stress_test.cpp.o.d"
  "tfm_stress_test"
  "tfm_stress_test.pdb"
  "tfm_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
