# Empty dependencies file for stg_minimize_test.
# This may be replaced when dependencies are built.
