# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stg_minimize_test.
