file(REMOVE_RECURSE
  "CMakeFiles/stg_minimize_test.dir/stg_minimize_test.cpp.o"
  "CMakeFiles/stg_minimize_test.dir/stg_minimize_test.cpp.o.d"
  "stg_minimize_test"
  "stg_minimize_test.pdb"
  "stg_minimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stg_minimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
