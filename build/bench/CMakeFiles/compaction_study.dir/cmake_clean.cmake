file(REMOVE_RECURSE
  "CMakeFiles/compaction_study.dir/compaction_study.cpp.o"
  "CMakeFiles/compaction_study.dir/compaction_study.cpp.o.d"
  "compaction_study"
  "compaction_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compaction_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
