file(REMOVE_RECURSE
  "CMakeFiles/table4_sest.dir/table4_sest.cpp.o"
  "CMakeFiles/table4_sest.dir/table4_sest.cpp.o.d"
  "table4_sest"
  "table4_sest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
