# Empty compiler generated dependencies file for table4_sest.
# This may be replaced when dependencies are built.
