# Empty compiler generated dependencies file for srf_census.
# This may be replaced when dependencies are built.
