file(REMOVE_RECURSE
  "CMakeFiles/srf_census.dir/srf_census.cpp.o"
  "CMakeFiles/srf_census.dir/srf_census.cpp.o.d"
  "srf_census"
  "srf_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srf_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
