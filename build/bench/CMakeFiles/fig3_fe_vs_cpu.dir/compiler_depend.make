# Empty compiler generated dependencies file for fig3_fe_vs_cpu.
# This may be replaced when dependencies are built.
