# Empty compiler generated dependencies file for table1_fsms.
# This may be replaced when dependencies are built.
