file(REMOVE_RECURSE
  "CMakeFiles/table1_fsms.dir/table1_fsms.cpp.o"
  "CMakeFiles/table1_fsms.dir/table1_fsms.cpp.o.d"
  "table1_fsms"
  "table1_fsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
