# Empty compiler generated dependencies file for table6_density.
# This may be replaced when dependencies are built.
