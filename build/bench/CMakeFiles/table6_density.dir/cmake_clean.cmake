file(REMOVE_RECURSE
  "CMakeFiles/table6_density.dir/table6_density.cpp.o"
  "CMakeFiles/table6_density.dir/table6_density.cpp.o.d"
  "table6_density"
  "table6_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
