file(REMOVE_RECURSE
  "CMakeFiles/table3_attest.dir/table3_attest.cpp.o"
  "CMakeFiles/table3_attest.dir/table3_attest.cpp.o.d"
  "table3_attest"
  "table3_attest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_attest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
