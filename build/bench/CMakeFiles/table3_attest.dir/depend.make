# Empty dependencies file for table3_attest.
# This may be replaced when dependencies are built.
