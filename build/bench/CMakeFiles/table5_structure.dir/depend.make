# Empty dependencies file for table5_structure.
# This may be replaced when dependencies are built.
