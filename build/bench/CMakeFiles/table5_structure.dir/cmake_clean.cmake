file(REMOVE_RECURSE
  "CMakeFiles/table5_structure.dir/table5_structure.cpp.o"
  "CMakeFiles/table5_structure.dir/table5_structure.cpp.o.d"
  "table5_structure"
  "table5_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
