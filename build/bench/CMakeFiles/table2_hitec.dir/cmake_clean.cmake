file(REMOVE_RECURSE
  "CMakeFiles/table2_hitec.dir/table2_hitec.cpp.o"
  "CMakeFiles/table2_hitec.dir/table2_hitec.cpp.o.d"
  "table2_hitec"
  "table2_hitec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hitec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
