# Empty compiler generated dependencies file for table2_hitec.
# This may be replaced when dependencies are built.
