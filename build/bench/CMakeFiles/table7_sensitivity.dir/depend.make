# Empty dependencies file for table7_sensitivity.
# This may be replaced when dependencies are built.
