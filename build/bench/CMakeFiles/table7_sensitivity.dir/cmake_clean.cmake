file(REMOVE_RECURSE
  "CMakeFiles/table7_sensitivity.dir/table7_sensitivity.cpp.o"
  "CMakeFiles/table7_sensitivity.dir/table7_sensitivity.cpp.o.d"
  "table7_sensitivity"
  "table7_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
