# Empty dependencies file for table8_replay.
# This may be replaced when dependencies are built.
