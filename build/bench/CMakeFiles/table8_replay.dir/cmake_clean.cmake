file(REMOVE_RECURSE
  "CMakeFiles/table8_replay.dir/table8_replay.cpp.o"
  "CMakeFiles/table8_replay.dir/table8_replay.cpp.o.d"
  "table8_replay"
  "table8_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
