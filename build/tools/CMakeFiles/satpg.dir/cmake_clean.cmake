file(REMOVE_RECURSE
  "CMakeFiles/satpg.dir/satpg_cli.cpp.o"
  "CMakeFiles/satpg.dir/satpg_cli.cpp.o.d"
  "satpg"
  "satpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
