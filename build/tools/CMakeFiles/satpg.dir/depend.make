# Empty dependencies file for satpg.
# This may be replaced when dependencies are built.
